"""Span and event schema shared by every observability producer.

One vocabulary covers the whole stack: request-lifecycle spans emitted
by the serving scheduler and fleet loop, fault spans from the chaos
layer, iteration-level step slices, and (via :mod:`repro.obs.bridge`)
op-level cycles from :mod:`repro.sim.trace` rescaled into wall-clock
seconds.  Everything downstream — the Perfetto exporter, the ASCII
fleet timeline, the metrics bundle — consumes only these types.

The schema is deliberately dependency-light (no imports from the
serving / fleet / sim layers) so any module can emit spans without
creating an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = [
    "OBS_SCHEMA",
    "OBS_SCHEMA_VERSION",
    "CAT_REQUEST",
    "CAT_STEP",
    "CAT_FAULT",
    "CAT_OP",
    "Span",
    "Instant",
    "FleetTrace",
]

#: Schema identifier stamped into every exported trace document.
OBS_SCHEMA = "repro.obs.trace"
#: Bump when the span vocabulary or field layout changes incompatibly.
OBS_SCHEMA_VERSION = 1

#: Span categories — one Perfetto track per (process, category).
CAT_REQUEST = "request"  # lifecycle: QUEUE / PREFILL / DECODE
CAT_STEP = "step"  # scheduler iterations: prefill steps, decode runs
CAT_FAULT = "fault"  # chaos layer: CRASH / REWARM / BROWNOUT
CAT_OP = "op"  # per-op cycles bridged from repro.sim.trace

Attrs = Tuple[Tuple[str, object], ...]


def _freeze_attrs(attrs: Optional[Dict[str, object]]) -> Attrs:
    if not attrs:
        return ()
    return tuple(sorted(attrs.items()))


@dataclass(frozen=True)
class Span(object):
    """A half-open interval ``[t0_s, t1_s)`` on the simulated clock."""

    name: str
    cat: str
    t0_s: float
    t1_s: float
    shard_id: Optional[int] = None
    request_id: Optional[int] = None
    attrs: Attrs = ()

    def __post_init__(self) -> None:
        if self.t1_s < self.t0_s:
            raise SimulationError(
                f"span {self.name!r} ends before it starts "
                f"({self.t0_s} -> {self.t1_s})"
            )

    @property
    def duration_s(self) -> float:
        """Span length in simulated seconds."""
        return self.t1_s - self.t0_s

    @property
    def attrs_dict(self) -> Dict[str, object]:
        """The frozen attribute pairs as a plain dict."""
        return dict(self.attrs)

    @staticmethod
    def make(
        name: str,
        cat: str,
        t0_s: float,
        t1_s: float,
        shard_id: Optional[int] = None,
        request_id: Optional[int] = None,
        **attrs: object,
    ) -> "Span":
        """Construct a span with keyword attributes (order-insensitive)."""
        return Span(name, cat, t0_s, t1_s, shard_id, request_id, _freeze_attrs(attrs))


@dataclass(frozen=True)
class Instant(object):
    """A point event on the simulated clock (SUBMIT, ROUTE, RETRY...)."""

    name: str
    cat: str
    t_s: float
    shard_id: Optional[int] = None
    request_id: Optional[int] = None
    attrs: Attrs = ()

    @property
    def attrs_dict(self) -> Dict[str, object]:
        """The frozen attribute pairs as a plain dict."""
        return dict(self.attrs)

    @staticmethod
    def make(
        name: str,
        cat: str,
        t_s: float,
        shard_id: Optional[int] = None,
        request_id: Optional[int] = None,
        **attrs: object,
    ) -> "Instant":
        """Construct an instant with keyword attributes."""
        return Instant(name, cat, t_s, shard_id, request_id, _freeze_attrs(attrs))


@dataclass(frozen=True)
class FleetTrace(object):
    """An immutable bag of spans and instants for one simulation run."""

    spans: Tuple[Span, ...]
    instants: Tuple[Instant, ...]
    schema: str = OBS_SCHEMA
    schema_version: int = OBS_SCHEMA_VERSION
    n_shards: int = 0

    @staticmethod
    def build(
        spans: Iterable[Span],
        instants: Iterable[Instant] = (),
        n_shards: int = 0,
    ) -> "FleetTrace":
        """Freeze span/instant iterables into a deterministic trace.

        Events are ordered by (time, name, request id) so traces built
        from identical runs compare equal regardless of emission order.
        """
        def span_key(s: Span):
            return (
                s.t0_s, s.t1_s, s.cat, s.name,
                -1 if s.request_id is None else s.request_id,
                -1 if s.shard_id is None else s.shard_id,
            )

        def inst_key(i: Instant):
            return (
                i.t_s, i.cat, i.name,
                -1 if i.request_id is None else i.request_id,
                -1 if i.shard_id is None else i.shard_id,
            )

        return FleetTrace(
            spans=tuple(sorted(spans, key=span_key)),
            instants=tuple(sorted(instants, key=inst_key)),
            n_shards=n_shards,
        )

    def for_request(self, request_id: int) -> "FleetTrace":
        """The sub-trace touching one request id."""
        return FleetTrace(
            spans=tuple(s for s in self.spans if s.request_id == request_id),
            instants=tuple(i for i in self.instants if i.request_id == request_id),
            n_shards=self.n_shards,
        )

    def for_shard(self, shard_id: int) -> "FleetTrace":
        """The sub-trace of one shard's track."""
        return FleetTrace(
            spans=tuple(s for s in self.spans if s.shard_id == shard_id),
            instants=tuple(i for i in self.instants if i.shard_id == shard_id),
            n_shards=self.n_shards,
        )

    def span_names(self) -> List[str]:
        """Distinct span names, sorted (handy in tests and reports)."""
        return sorted({s.name for s in self.spans})

    @property
    def end_s(self) -> float:
        """Latest timestamp in the trace (0.0 when empty)."""
        ends = [s.t1_s for s in self.spans] + [i.t_s for i in self.instants]
        return max(ends) if ends else 0.0

    def merged(self, extra_spans: Iterable[Span]) -> "FleetTrace":
        """A new trace with ``extra_spans`` folded in (re-sorted)."""
        return FleetTrace.build(
            list(self.spans) + list(extra_spans),
            self.instants,
            n_shards=self.n_shards,
        )
