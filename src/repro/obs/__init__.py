"""Unified observability: request spans, fleet metrics, trace export.

The reproduction's production-style telemetry layer.  A
:class:`FleetObserver` threads through the serving scheduler, the fleet
event calendar, routing, and the chaos layer, collecting:

* **spans & instants** — every request gets a lifecycle trace
  (SUBMIT → ROUTE → QUEUE → PREFILL → DECODE → COMPLETE, plus
  RETRY/SHED/EXPIRED/LOST dispositions, WITHDRAW/MIGRATE steals, and
  CRASH/REWARM/BROWNOUT fault windows);
* **metrics** — labeled counters/gauges/histograms sampled on
  simulated-time ticks (per-shard KV occupancy, queue depth, batch
  size, in-flight decodes, retry/shed rates), exported as versioned
  JSON or CSV;
* **exporters** — Perfetto/Chrome ``trace_event`` JSON (one track per
  shard, router→shard flow arrows), an ASCII fleet timeline, and the
  :mod:`repro.obs.bridge` that nests op-level cycle traces from
  :mod:`repro.sim.trace` under a request's PREFILL span.

Observability is opt-in and free when off: with ``obs=None`` (the
default everywhere) no observer code runs and results are bit-identical
— a property test enforces it, and ``benchmarks/bench_obs_overhead.py``
bounds the enabled-mode cost in CI.
"""

from .bridge import nest_op_trace, op_spans, trace_from_report
from .gantt import render_fleet_timeline
from .metrics import (
    METRICS_SCHEMA,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .perfetto import to_perfetto, validate_trace_events
from .spans import (
    CAT_FAULT,
    CAT_OP,
    CAT_REQUEST,
    CAT_STEP,
    OBS_SCHEMA,
    OBS_SCHEMA_VERSION,
    FleetTrace,
    Instant,
    Span,
)
from .tracer import FleetObserver, ObsBundle, ShardObs

__all__ = [
    "OBS_SCHEMA",
    "OBS_SCHEMA_VERSION",
    "CAT_REQUEST",
    "CAT_STEP",
    "CAT_FAULT",
    "CAT_OP",
    "Span",
    "Instant",
    "FleetTrace",
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "FleetObserver",
    "ShardObs",
    "ObsBundle",
    "to_perfetto",
    "validate_trace_events",
    "render_fleet_timeline",
    "op_spans",
    "nest_op_trace",
    "trace_from_report",
]
