"""The fleet observer: collects spans, instants, and metric samples.

A :class:`FleetObserver` is handed to :class:`~repro.fleet.FleetSimulator`
(or :class:`~repro.serving.ServingSimulator`) at construction.  The fleet
loop records routing / fault / disposition events directly; each shard's
:class:`~repro.serving.ContinuousBatchingScheduler` receives a bound
:class:`ShardObs` view and calls it from its step functions.

Design constraints, in priority order:

1. **Free when off.**  Every producer guards with a single
   ``if obs is not None`` — no observer object is ever allocated on the
   disabled path, and observers never feed back into scheduling
   decisions, so ``obs=None`` runs are bit-identical by construction
   (and verified by a hypothesis property test).
2. **Cheap when on.**  Hot-path hooks append small tuples or bump
   pre-bound gauges; lifecycle spans are assembled once, in
   :meth:`FleetObserver.build`.  Gauge sampling is rate-limited to the
   observer's ``tick_s`` of *simulated* time per shard.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .spans import CAT_FAULT, CAT_REQUEST, CAT_STEP, FleetTrace, Instant, Span

__all__ = ["ShardObs", "FleetObserver", "ObsBundle"]

#: Batch-size histogram boundaries (requests per decode iteration).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

# Indices into a shard's open-request record.
_ARRIVAL, _ADMIT, _PREFILL_START, _FIRST_TOKEN = range(4)


class ShardObs(object):
    """One shard's view of the observer; called from scheduler steps."""

    __slots__ = (
        "shard_id",
        "_reg",
        "_tick_s",
        "_next_sample_s",
        "_open",
        "_steps",
        "_lifecycle",
        "_g_kv",
        "_g_queue",
        "_g_decoding",
        "_g_waiting",
        "_h_batch",
        "_c_admitted",
        "_c_completed",
        "_c_withdrawn",
        "_c_decode_iters",
    )

    def __init__(self, shard_id: int, registry: MetricsRegistry, tick_s: float) -> None:
        self.shard_id = shard_id
        self._reg = registry
        self._tick_s = tick_s
        self._next_sample_s = 0.0
        #: request_id -> [arrival_s, admit_s, prefill_start_s, first_token_s]
        self._open: Dict[int, List[Optional[float]]] = {}
        #: (t0_s, t1_s, kind, k, batch, request_id)
        self._steps: List[Tuple[float, float, str, int, int, Optional[int]]] = []
        #: (name, t0_s, t1_s, request_id, outcome) — materialized lazily
        #: in drain_spans() so the hot path only appends tuples.
        self._lifecycle: List[
            Tuple[str, float, float, int, Optional[str]]
        ] = []
        shard = str(shard_id)
        self._g_kv = registry.gauge("kv_reserved_bytes", shard=shard)
        self._g_queue = registry.gauge("queue_depth", shard=shard)
        self._g_decoding = registry.gauge("inflight_decodes", shard=shard)
        self._g_waiting = registry.gauge("waiting_requests", shard=shard)
        self._h_batch = registry.histogram("batch_size", BATCH_BUCKETS, shard=shard)
        self._c_admitted = registry.counter("requests_admitted", shard=shard)
        self._c_completed = registry.counter("requests_completed", shard=shard)
        self._c_withdrawn = registry.counter("requests_withdrawn", shard=shard)
        self._c_decode_iters = registry.counter("decode_iterations", shard=shard)

    # -- scheduler hooks (hot path; keep allocation-light) ------------
    def request_event(self, t_s: float, kind: str, request_id: int) -> None:
        """Mirror one non-token scheduler event into the lifecycle FSM.

        ``kind`` is the :class:`~repro.serving.EventKind` value string;
        per-token kinds (``first_token`` / ``decode_step``) are *not*
        routed here — see :meth:`first_token`.
        """
        if kind == "arrival":
            self._open[request_id] = [t_s, None, None, None]
            return
        rec = self._open.get(request_id)
        if rec is None:
            return
        if kind == "admit":
            rec[_ADMIT] = t_s
            self._c_admitted.inc()
        elif kind == "prefill_start":
            rec[_PREFILL_START] = t_s
            self._lifecycle.append(
                ("QUEUE", rec[_ARRIVAL], t_s, request_id, None)
            )
        elif kind == "complete":
            self._close(request_id, rec, t_s)
        elif kind == "withdraw":
            self._lifecycle.append(
                ("QUEUE", rec[_ARRIVAL], t_s, request_id, "withdrawn")
            )
            self._c_withdrawn.inc()
            del self._open[request_id]

    def first_token(self, t_s: float, request_id: int) -> None:
        """Record the first-token instant (independent of token_events)."""
        rec = self._open.get(request_id)
        if rec is not None:
            rec[_FIRST_TOKEN] = t_s

    def step(
        self,
        t0_s: float,
        t1_s: float,
        kind: str,
        k: int,
        batch: int,
        request_id: Optional[int] = None,
    ) -> None:
        """One scheduler iteration slice: a prefill step or a decode run

        of ``k`` coalesced iterations over ``batch`` requests.
        """
        self._steps.append((t0_s, t1_s, kind, k, batch, request_id))
        if kind == "decode":
            self._h_batch.observe(float(batch))
            self._c_decode_iters.inc(k)

    def sample(
        self,
        t_s: float,
        kv_reserved_bytes: int,
        queue_depth: int,
        n_decoding: int,
        n_waiting: int,
    ) -> None:
        """Rate-limited gauge sampling on the simulated clock."""
        if t_s < self._next_sample_s:
            return
        self._next_sample_s = t_s + self._tick_s
        self._g_kv.record(t_s, float(kv_reserved_bytes))
        self._g_queue.record(t_s, float(queue_depth))
        self._g_decoding.record(t_s, float(n_decoding))
        self._g_waiting.record(t_s, float(n_waiting))

    # -- assembly -----------------------------------------------------
    def _close(self, request_id: int, rec: List[Optional[float]], t_s: float) -> None:
        prefill_start = rec[_PREFILL_START]
        first_token = rec[_FIRST_TOKEN]
        if prefill_start is not None and first_token is not None:
            self._lifecycle.append(
                ("PREFILL", prefill_start, first_token, request_id, None)
            )
        if first_token is not None:
            self._lifecycle.append(
                ("DECODE", first_token, t_s, request_id, None)
            )
        self._c_completed.inc()
        del self._open[request_id]

    def _snapshot(self) -> "_ShardSnapshot":
        """An O(n) shallow copy of the raw event state — cheap enough
        for :meth:`FleetObserver.build` to take inside a timed run."""
        return (
            list(self._lifecycle),
            {rid: list(rec) for rid, rec in self._open.items()},
            list(self._steps),
        )

    def drain_spans(self) -> List[Span]:
        """All spans this shard produced (lifecycle + step slices).

        Requests still open (e.g. in flight when a crash harvested the
        shard) contribute only the phases with both endpoints known.
        """
        return _materialize_shard(self.shard_id, self._snapshot())


_ShardSnapshot = Tuple[
    List[Tuple[str, float, float, int, Optional[str]]],
    Dict[int, List[Optional[float]]],
    List[Tuple[float, float, str, int, int, Optional[int]]],
]


def _materialize_shard(shard_id: int, snap: _ShardSnapshot) -> List[Span]:
    """Turn one shard's raw event snapshot into Span objects."""
    lifecycle, open_reqs, steps = snap
    spans: List[Span] = []
    for name, t0, t1, request_id, outcome in lifecycle:
        spans.append(
            Span(
                name, CAT_REQUEST, t0, t1, shard_id, request_id,
                (("outcome", outcome),) if outcome is not None else (),
            )
        )
    for request_id, rec in open_reqs.items():
        prefill_start, first_token = rec[_PREFILL_START], rec[_FIRST_TOKEN]
        # QUEUE was already emitted at prefill_start; only the phases
        # with both endpoints known are reconstructed here.
        if prefill_start is not None and first_token is not None:
            spans.append(
                Span.make(
                    "PREFILL", CAT_REQUEST, prefill_start, first_token,
                    shard_id=shard_id, request_id=request_id,
                    outcome="interrupted",
                )
            )
    step_name = {"prefill": "PREFILL_STEP", "decode": "DECODE_RUN"}
    for t0, t1, kind, k, batch, request_id in steps:
        spans.append(
            Span.make(
                step_name.get(kind, kind.upper()), CAT_STEP, t0, t1,
                shard_id=shard_id, request_id=request_id,
                k=k, batch=batch,
            )
        )
    return spans


class FleetObserver(object):
    """Root observer: fleet-level events plus per-shard views."""

    def __init__(self, tick_s: float = 0.05) -> None:
        self.tick_s = tick_s
        self.registry = MetricsRegistry()
        self._spans: List[Span] = []
        self._instants: List[Instant] = []
        self._shards: Dict[int, ShardObs] = {}

    def shard(self, shard_id: int) -> ShardObs:
        """The (created-on-first-use) view bound to one shard."""
        got = self._shards.get(shard_id)
        if got is None:
            got = self._shards[shard_id] = ShardObs(
                shard_id, self.registry, self.tick_s
            )
        return got

    def instant(
        self,
        name: str,
        t_s: float,
        request_id: Optional[int] = None,
        shard_id: Optional[int] = None,
        cat: str = CAT_REQUEST,
        **attrs: object,
    ) -> None:
        """Record a fleet-level point event (SUBMIT, ROUTE, RETRY...)."""
        self._instants.append(
            Instant.make(name, cat, t_s, shard_id, request_id, **attrs)
        )

    def span(
        self,
        name: str,
        t0_s: float,
        t1_s: float,
        shard_id: Optional[int] = None,
        request_id: Optional[int] = None,
        cat: str = CAT_FAULT,
        **attrs: object,
    ) -> None:
        """Record a fleet-level interval (CRASH, REWARM, BROWNOUT...)."""
        self._spans.append(
            Span.make(name, cat, t0_s, t1_s, shard_id, request_id, **attrs)
        )

    def count(self, name: str, n: float = 1.0, **labels: object) -> None:
        """Bump a fleet-level counter."""
        self.registry.counter(name, **labels).inc(n)

    def gauge(self, name: str, t_s: float, value: float, **labels: object) -> None:
        """Record one fleet-level gauge sample."""
        self.registry.gauge(name, **labels).record(t_s, value)

    def build(self) -> "ObsBundle":
        """Snapshot the run into a trace + metrics bundle.

        The snapshot is O(events) shallow list copies; Span objects are
        materialized and sorted lazily on the bundle's first ``.trace``
        access, so a simulated run never pays for export assembly —
        part of the <= 1.5x enabled-mode overhead budget
        ``benchmarks/bench_obs_overhead.py`` enforces.
        """
        fleet_spans = list(self._spans)
        instants = tuple(self._instants)
        snaps = [
            (shard_id, shard._snapshot())
            for shard_id, shard in self._shards.items()
        ]
        n_shards = (max(self._shards) + 1) if self._shards else 0

        def assemble() -> FleetTrace:
            spans = list(fleet_spans)
            for shard_id, snap in snaps:
                spans.extend(_materialize_shard(shard_id, snap))
            return FleetTrace.build(spans, instants, n_shards=n_shards)

        return ObsBundle(metrics=self.registry, _assemble=assemble)


class ObsBundle(object):
    """The exportable artifact pair attached to a report.

    ``trace`` is assembled lazily from the build-time snapshot on first
    access (then cached); ``metrics`` is the live registry. Construct
    with an explicit ``trace=`` for hand-built bundles in tests.
    """

    __slots__ = ("metrics", "_assemble", "_trace")

    def __init__(
        self,
        metrics: MetricsRegistry,
        trace: Optional[FleetTrace] = None,
        _assemble=None,
    ) -> None:
        if trace is None and _assemble is None:
            raise ValueError("ObsBundle needs a trace or an assembler")
        self.metrics = metrics
        self._assemble = _assemble
        self._trace = trace

    @property
    def trace(self) -> FleetTrace:
        """The immutable span/instant trace (materialized on demand)."""
        trace = self._trace
        if trace is None:
            trace = self._trace = self._assemble()
        return trace

    def __repr__(self) -> str:
        if self._trace is None:
            return "ObsBundle(trace=<lazy>)"
        return (
            f"ObsBundle(spans={len(self._trace.spans)}, "
            f"instants={len(self._trace.instants)})"
        )

    def perfetto(self) -> Dict[str, object]:
        """The trace as a Perfetto/Chrome ``trace_event`` document."""
        from .perfetto import to_perfetto

        return to_perfetto(self.trace)

    def write_trace(self, path: str) -> None:
        """Write the Perfetto JSON trace to ``path``."""
        import json

        with open(path, "w") as fh:
            json.dump(self.perfetto(), fh, indent=2, sort_keys=True)

    def write_metrics(self, path: str) -> None:
        """Write the metrics export; ``.csv`` suffix selects CSV."""
        if path.endswith(".csv"):
            text = self.metrics.to_csv()
        else:
            text = self.metrics.to_json()
        with open(path, "w") as fh:
            fh.write(text)
