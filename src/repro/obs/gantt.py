"""ASCII fleet timelines: the op-level Gantt generalized to shards.

:func:`repro.sim.trace.render_gantt` draws one op per row; a fleet run
needs the transpose — one row per *shard*, with time on the x-axis and
a glyph per column summarizing what the shard was doing.  Fault spans
overlay the busy/idle texture so a crash window reads at a glance.

Glyphs (highest priority wins per column)::

    X crash outage     w re-warm (weight reload)   ~ brownout
    # prefill          = decode                    . idle-but-up
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import SimulationError
from .spans import FleetTrace

__all__ = ["render_fleet_timeline"]

#: Per-column glyph priority: later entries overwrite earlier ones.
_LAYERS = (
    ("DECODE", "="),
    ("DECODE_RUN", "="),
    ("PREFILL", "#"),
    ("PREFILL_STEP", "#"),
    ("BROWNOUT", "~"),
    ("REWARM", "w"),
    ("CRASH", "X"),
)

_LEGEND = "legend: #=prefill ==decode X=crash w=rewarm ~=brownout .=idle"


def render_fleet_timeline(trace: FleetTrace, width: int = 80) -> str:
    """Render one row per shard across the trace's full time span."""
    if width < 10:
        raise SimulationError(f"width must be >= 10, got {width}")
    span_s = trace.end_s
    if span_s <= 0:
        raise SimulationError("cannot render an empty or zero-duration trace")
    n_shards = trace.n_shards or 1 + max(
        (s.shard_id for s in trace.spans if s.shard_id is not None), default=-1
    )
    if n_shards <= 0:
        raise SimulationError("trace has no shard-attributed spans to render")

    rows: Dict[int, List[str]] = {i: ["."] * width for i in range(n_shards)}
    priority = {name: rank for rank, (name, _) in enumerate(_LAYERS)}
    glyph = dict(_LAYERS)
    painted: Dict[int, List[int]] = {i: [-1] * width for i in range(n_shards)}

    for s in trace.spans:
        rank = priority.get(s.name)
        if rank is None or s.shard_id is None or s.shard_id >= n_shards:
            continue
        begin = int(s.t0_s / span_s * width)
        end = max(begin + 1, int(s.t1_s / span_s * width))
        row, ranks, ch = rows[s.shard_id], painted[s.shard_id], glyph[s.name]
        for col in range(begin, min(end, width)):
            if rank > ranks[col]:
                ranks[col] = rank
                row[col] = ch

    label_w = len(f"shard {n_shards - 1}") + 1
    lines = [f"fleet timeline — {n_shards} shard(s), {span_s:.3f} s simulated"]
    for shard_id in range(n_shards):
        lines.append(f"{f'shard {shard_id}':<{label_w}}|{''.join(rows[shard_id])}|")
    lines.append(_LEGEND)
    return "\n".join(lines)
