"""Perfetto / Chrome ``trace_event`` JSON export.

Produces the classic JSON-array trace format understood by
https://ui.perfetto.dev and ``chrome://tracing``:

* one *process* per shard (plus a ``fleet`` process for global events
  like SUBMIT/ROUTE instants), named via ``M`` metadata events;
* one *thread* (track) per span category inside each process —
  request lifecycle, scheduler steps, faults, bridged op cycles;
* spans as ``X`` complete events (``ts``/``dur`` in microseconds of
  simulated time), instants as ``i`` events;
* request hand-offs as flow events: a ``s`` (flow start) at the ROUTE
  decision on the fleet track connects to a ``f`` (flow finish) at the
  request's QUEUE span on the owning shard, so Perfetto draws the
  arrow from router to shard — one arrow per attempt when retries
  re-route a request.

:func:`validate_trace_events` is the structural checker used by tests
and the CI ``obs-smoke`` job.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SimulationError
from .spans import (
    CAT_FAULT,
    CAT_OP,
    CAT_REQUEST,
    CAT_STEP,
    OBS_SCHEMA,
    OBS_SCHEMA_VERSION,
    FleetTrace,
)

__all__ = ["to_perfetto", "validate_trace_events"]

#: pid of the synthetic process holding fleet-global events.
FLEET_PID = 1

_TIDS = {CAT_REQUEST: 1, CAT_STEP: 2, CAT_FAULT: 3, CAT_OP: 4}
_TID_NAMES = {
    CAT_REQUEST: "requests",
    CAT_STEP: "steps",
    CAT_FAULT: "faults",
    CAT_OP: "ops",
}
_VALID_PHASES = frozenset({"X", "M", "i", "I", "s", "t", "f", "b", "e", "C"})


def _pid(shard_id: Optional[int]) -> int:
    return FLEET_PID if shard_id is None else FLEET_PID + 1 + shard_id


def _tid(cat: str) -> int:
    return _TIDS.get(cat, 9)


def _us(t_s: float) -> float:
    return t_s * 1e6


def to_perfetto(trace: FleetTrace) -> Dict[str, object]:
    """Render a :class:`FleetTrace` as a ``trace_event`` document."""
    events: List[Dict[str, object]] = []

    # Process/thread naming metadata.
    pids = {None} | {s.shard_id for s in trace.spans} | {
        i.shard_id for i in trace.instants
    }
    cats_by_pid: Dict[Optional[int], set] = {}
    for s in trace.spans:
        cats_by_pid.setdefault(s.shard_id, set()).add(s.cat)
    for i in trace.instants:
        cats_by_pid.setdefault(i.shard_id, set()).add(i.cat)
    for shard_id in sorted(pids, key=lambda x: -1 if x is None else x):
        pid = _pid(shard_id)
        name = "fleet" if shard_id is None else f"shard {shard_id}"
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )
        for cat in sorted(cats_by_pid.get(shard_id, ())):
            events.append(
                {"ph": "M", "name": "thread_name", "pid": pid, "tid": _tid(cat),
                 "args": {"name": _TID_NAMES.get(cat, cat)}}
            )

    for s in trace.spans:
        ev: Dict[str, object] = {
            "ph": "X",
            "name": s.name,
            "cat": s.cat,
            "ts": _us(s.t0_s),
            "dur": _us(s.duration_s),
            "pid": _pid(s.shard_id),
            "tid": _tid(s.cat),
        }
        args = s.attrs_dict
        if s.request_id is not None:
            args["request_id"] = s.request_id
        if args:
            ev["args"] = args
        events.append(ev)

    for i in trace.instants:
        ev = {
            "ph": "i",
            "name": i.name,
            "cat": i.cat,
            "ts": _us(i.t_s),
            "pid": _pid(i.shard_id),
            "tid": _tid(i.cat),
            "s": "t",
        }
        args = i.attrs_dict
        if i.request_id is not None:
            args["request_id"] = i.request_id
        if args:
            ev["args"] = args
        events.append(ev)

    events.extend(_flow_events(trace))

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": OBS_SCHEMA, "schema_version": OBS_SCHEMA_VERSION},
    }


def _flow_events(trace: FleetTrace) -> List[Dict[str, object]]:
    """Router→shard arrows: one flow per (request, attempt) hand-off."""
    routes: Dict[int, List] = {}
    for i in trace.instants:
        if i.name == "ROUTE" and i.request_id is not None:
            routes.setdefault(i.request_id, []).append(i)
    arrivals: Dict[int, List] = {}
    for s in trace.spans:
        if s.cat == CAT_REQUEST and s.name == "QUEUE" and s.request_id is not None:
            arrivals.setdefault(s.request_id, []).append(s)

    out: List[Dict[str, object]] = []
    for request_id, route_list in sorted(routes.items()):
        landings = arrivals.get(request_id, [])
        for attempt, (route, landed) in enumerate(zip(route_list, landings)):
            flow_id = f"req{request_id}.{attempt}"
            base = {"cat": "flow", "name": "route", "id": flow_id}
            out.append(
                dict(base, ph="s", ts=_us(route.t_s), pid=_pid(route.shard_id),
                     tid=_tid(CAT_REQUEST))
            )
            out.append(
                dict(base, ph="f", bp="e", ts=_us(landed.t0_s),
                     pid=_pid(landed.shard_id), tid=_tid(CAT_REQUEST))
            )
    return out


def validate_trace_events(doc: object) -> Dict[str, int]:
    """Structurally validate a ``trace_event`` document.

    Checks the invariants Perfetto's legacy JSON importer relies on and
    returns summary counts; raises :class:`SimulationError` on the
    first violation.  Used by tests and the CI ``obs-smoke`` job.
    """
    if not isinstance(doc, dict):
        raise SimulationError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise SimulationError("traceEvents must be a non-empty list")

    counts = {"events": 0, "complete": 0, "instant": 0, "metadata": 0, "flow": 0}
    flow_starts = set()
    flow_ends = set()
    for n, ev in enumerate(events):
        where = f"traceEvents[{n}]"
        if not isinstance(ev, dict):
            raise SimulationError(f"{where}: event must be an object")
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            raise SimulationError(f"{where}: unknown phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise SimulationError(f"{where}: {key} must be an integer")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise SimulationError(f"{where}: name must be a non-empty string")
        counts["events"] += 1
        if ph == "M":
            if not isinstance(ev.get("args"), dict):
                raise SimulationError(f"{where}: metadata event needs args")
            counts["metadata"] += 1
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise SimulationError(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise SimulationError(f"{where}: dur must be a non-negative number")
            counts["complete"] += 1
        elif ph in ("i", "I"):
            if ev.get("s") not in (None, "g", "p", "t"):
                raise SimulationError(f"{where}: instant scope must be g/p/t")
            counts["instant"] += 1
        elif ph in ("s", "t", "f"):
            flow_id = ev.get("id")
            if flow_id is None:
                raise SimulationError(f"{where}: flow event needs an id")
            counts["flow"] += 1
            (flow_starts if ph == "s" else flow_ends).add(flow_id)
    unmatched = flow_ends - flow_starts
    if unmatched:
        raise SimulationError(
            f"flow finish without start for ids: {sorted(unmatched)[:5]}"
        )
    return counts
