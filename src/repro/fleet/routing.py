"""Routing policies: which shard of a fleet serves the next request.

A policy sees the arriving :class:`~repro.serving.Request` and one
:class:`~repro.serving.SchedulerSnapshot` per *feasible* shard (shards
whose model context and KV budget could ever hold the request are
pre-filtered by the fleet simulator) and returns the chosen shard id.
Policies are deterministic: given the same request and snapshots they
always pick the same shard, and every tie is broken by ascending shard
id — so a seeded scenario maps to exactly one fleet timeline.

Five policies ship, in increasing awareness of shard state:

* **round-robin** — cycles through the feasible shards, blind to load.
  The baseline every load balancer is measured against.
* **jsq** (join-shortest-queue) — fewest requests anywhere in the shard
  (waiting or decoding). The classic heterogeneity-blind balancer.
* **least-kv** — lowest committed-plus-queued worst-case KV demand as a
  fraction of the shard's budget; the right signal when admission
  control, not compute, is the bottleneck.
* **predicted-latency** — estimates the request's TTFT on every shard
  from the shard's own :class:`~repro.sim.surface.LatencySurface` and
  picks the minimum. Because the surface embeds the shard's bandwidth,
  packing plan and PE fabric, this is the only policy that exploits
  *heterogeneous* fleets (a 12 Gbps box finishes a prefill that a
  1 Gbps box would still be streaming weights for).
* **calibrated-latency** — predicted-latency plus a feedback loop: the
  signed predicted-vs-realized TTFT error of every completion it
  placed folds into a per-shard EWMA bias that corrects later
  predictions, so systematic model error (decode interleaving the
  prediction ignores) is learned away mid-run.

The predicted-latency model mirrors the scheduler's actual policy
(prefill-before-decode, FCFS):

``wait-until-free + queued prefill work + own prefill``

plus, only when the shard's KV budget could not hold the request on
arrival, the decode-drain time to free enough reservations. All terms
are surface lookups, so routing costs dict hits after warm-up and never
perturbs the modeled numbers.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..serving.request import Request
from ..serving.scheduler import SchedulerSnapshot

__all__ = [
    "model_ttft_s",
    "RoutingPolicy",
    "RoundRobinPolicy",
    "JoinShortestQueuePolicy",
    "LeastKVPressurePolicy",
    "PredictedLatencyPolicy",
    "CalibratedLatencyPolicy",
    "ROUTING_POLICIES",
    "make_policy",
]


def model_ttft_s(
    request: Request, now_s: float, snap: SchedulerSnapshot
) -> float:
    """Model the request's TTFT were it routed to this shard now.

    Exact under the shard's own scheduling policy up to batching
    effects: prefills run before decodes and FCFS ties are id-ordered,
    so a new arrival waits for (a) the step in flight, (b) every queued
    prefill ahead of it, then (c) its own prefill. When the KV budget
    cannot cover the queued demand plus this request, admission
    additionally waits for in-flight decodes to drain reservations —
    approximated by the remaining decode tokens at the shard's current
    batched-decode rate.

    Health-aware: a browned-out shard's work terms are scaled by its
    :class:`~repro.serving.ShardHealth` latency factor, so routing and
    deadline shedding both see degraded boxes as slower — exactly how
    the shard will actually run its steps. At nominal health the factor
    is 1.0 and the multiply is an exact IEEE-754 no-op, keeping
    fault-free predictions bit-identical to the pre-resilience model.
    Shared by :class:`PredictedLatencyPolicy` and
    :class:`~repro.fleet.resilience.DeadlineShedding`.
    """
    surface = snap.engine.surface
    scale = snap.health.latency_scale
    wait_s = max(0.0, snap.clock_s - now_s)
    # The snapshot carries queued prompts as a (length, count)
    # histogram — sized by distinct lengths, not backlog depth — so
    # the queued-work term costs O(distinct) surface hits, batched
    # into one call (same count * latency sum, in histogram order).
    queued_s = surface.queued_prefill_s(snap.waiting_prompt_hist)
    own_s = surface.prefill(request.prompt_tokens).latency_s
    # Per-term scaling keeps the summation order of the pre-resilience
    # model, so scale == 1.0 is bit-identical (x * 1.0 is exact).
    predicted = wait_s + queued_s * scale + own_s * scale

    model = snap.engine.model
    own_kv = model.n_layers * model.kv_cache_bytes_per_layer(
        request.total_tokens, snap.engine.config.act_bits
    )
    demand = snap.kv_reserved_bytes + snap.waiting_kv_bytes + own_kv
    if demand > snap.kv_budget_bytes and snap.n_decoding > 0:
        # Admission-blocked: charge the decode drain that must free
        # reservations first, at the shard's current batch rate.
        ctx = min(snap.decode_context + 1, model.max_seq_len)
        step = surface.decode(ctx, batch=snap.n_decoding).latency_s
        steps = (snap.remaining_decode_tokens + snap.n_decoding - 1) // snap.n_decoding
        predicted += step * steps * scale
    return predicted


class RoutingPolicy:
    """Protocol for fleet routing decisions.

    Subclasses override :meth:`route`; stateful policies (round-robin)
    also override :meth:`reset`, which the fleet simulator calls once
    per run so one policy object can drive many runs reproducibly.
    """

    name: str = "policy"

    def reset(self, n_shards: int) -> None:
        """Forget per-run state (called before every fleet run)."""

    def route(
        self,
        request: Request,
        now_s: float,
        snapshots: Sequence[SchedulerSnapshot],
    ) -> int:
        """Pick the serving shard; return its ``shard_id``.

        ``snapshots`` holds one entry per feasible shard, ordered by
        ascending shard id (never empty).
        """
        raise NotImplementedError

    def predicted_ttft_s(
        self, request: Request, now_s: float, snap: SchedulerSnapshot
    ) -> Optional[float]:
        """The TTFT this policy predicts for the request on one shard.

        ``None`` for policies that do not model latency (round-robin,
        JSQ, least-KV). The fleet simulator records the chosen shard's
        prediction on every :class:`~repro.fleet.RoutingDecision`, which
        is what powers the predicted-vs-realized calibration report.
        """
        return None

    def observe(
        self, shard_id: int, predicted_ttft_s: float, realized_ttft_s: float
    ) -> None:
        """Feedback hook: a predicted request completed on its shard.

        The fleet simulator calls this at completion time with the TTFT
        the policy predicted when it placed the request and the TTFT the
        shard realized. The default is a no-op; calibration-aware
        policies (``calibrated-latency``) fold the signed error into a
        per-shard bias so later predictions self-correct mid-run.
        Requests migrated away by work stealing are never observed —
        their original prediction no longer describes any placement.
        """


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through the feasible shards, blind to their state."""

    name = "round-robin"

    def __init__(self) -> None:
        self._turn = 0

    def reset(self, n_shards: int) -> None:
        self._turn = 0

    def route(
        self,
        request: Request,
        now_s: float,
        snapshots: Sequence[SchedulerSnapshot],
    ) -> int:
        # The cursor counts *decisions*, not shards, so a request whose
        # feasible set is narrower than the fleet still advances the
        # rotation deterministically.
        choice = snapshots[self._turn % len(snapshots)]
        self._turn += 1
        return choice.shard_id


class JoinShortestQueuePolicy(RoutingPolicy):
    """Fewest requests in the shard (waiting + decoding); ties by id."""

    name = "jsq"

    def route(
        self,
        request: Request,
        now_s: float,
        snapshots: Sequence[SchedulerSnapshot],
    ) -> int:
        best = min(snapshots, key=lambda s: (s.n_in_system, s.shard_id))
        return best.shard_id


class LeastKVPressurePolicy(RoutingPolicy):
    """Lowest (reserved + queued worst-case) KV demand over budget."""

    name = "least-kv"

    def route(
        self,
        request: Request,
        now_s: float,
        snapshots: Sequence[SchedulerSnapshot],
    ) -> int:
        best = min(snapshots, key=lambda s: (s.kv_pressure, s.shard_id))
        return best.shard_id


class PredictedLatencyPolicy(RoutingPolicy):
    """Minimize the surface-predicted TTFT of this request per shard."""

    name = "predicted-latency"

    def __init__(self) -> None:
        # Last decision's scores, so the fleet simulator's calibration
        # lookup for the chosen shard reuses what route() just computed
        # instead of re-deriving it. Keyed to (request, instant); the
        # model is pure, so a replay returns the identical float.
        self._scored: Tuple[int, float, Dict[int, float]] = (-1, math.nan, {})

    def reset(self, n_shards: int) -> None:
        self._scored = (-1, math.nan, {})

    def predicted_ttft_s(
        self, request: Request, now_s: float, snap: SchedulerSnapshot
    ) -> float:
        """The (possibly bias-corrected) TTFT prediction for one shard.

        A cache wrapper over :meth:`_model_ttft_s`: the fleet
        simulator's calibration lookup for the chosen shard reuses the
        score :meth:`route` just computed instead of re-deriving it.
        """
        req_id, at_s, scores = self._scored
        if req_id == request.request_id and at_s == now_s:
            cached = scores.get(snap.shard_id)
            if cached is not None:
                return cached
        return self._model_ttft_s(request, now_s, snap)

    def _model_ttft_s(
        self, request: Request, now_s: float, snap: SchedulerSnapshot
    ) -> float:
        """The raw (health-aware) TTFT model; see :func:`model_ttft_s`."""
        return model_ttft_s(request, now_s, snap)

    def route(
        self,
        request: Request,
        now_s: float,
        snapshots: Sequence[SchedulerSnapshot],
    ) -> int:
        self._scored = (-1, math.nan, {})
        scores = {
            snap.shard_id: self.predicted_ttft_s(request, now_s, snap)
            for snap in snapshots
        }
        self._scored = (request.request_id, now_s, scores)
        return min(
            snapshots, key=lambda s: (scores[s.shard_id], s.shard_id)
        ).shard_id


class CalibratedLatencyPolicy(PredictedLatencyPolicy):
    """Predicted-latency routing with completion-time error feedback.

    The plain predictive model has a known, *measured* bias — the
    calibration report exists precisely because the model ignores
    decode interleaving after admission. This policy closes that loop:
    every completion of a request it placed feeds the signed
    ``predicted - realized`` TTFT error into a per-shard bias via
    :meth:`observe`, and later predictions subtract the bias (clamped
    at zero — a negative TTFT is meaningless). The integral update
    ``bias += alpha * error`` on corrected predictions is exactly an
    EWMA of the *raw* model error with smoothing ``alpha``: if the raw
    error on a shard settles at ``d``, the bias converges to ``d`` and
    the corrected error to zero. Feedback arrives in completion order,
    which is deterministic for a seeded scenario, so calibrated runs
    stay reproducible.
    """

    name = "calibrated-latency"

    def __init__(self, alpha: float = 0.25) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._bias: Dict[int, float] = {}

    def reset(self, n_shards: int) -> None:
        super().reset(n_shards)
        self._bias = {}

    def _model_ttft_s(
        self, request: Request, now_s: float, snap: SchedulerSnapshot
    ) -> float:
        raw = super()._model_ttft_s(request, now_s, snap)
        return max(0.0, raw - self._bias.get(snap.shard_id, 0.0))

    def observe(
        self, shard_id: int, predicted_ttft_s: float, realized_ttft_s: float
    ) -> None:
        error = predicted_ttft_s - realized_ttft_s
        self._bias[shard_id] = self._bias.get(shard_id, 0.0) + self.alpha * error


#: Name -> constructor registry (CLI / sweep grids enumerate this).
ROUTING_POLICIES: Dict[str, Callable[[], RoutingPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    JoinShortestQueuePolicy.name: JoinShortestQueuePolicy,
    LeastKVPressurePolicy.name: LeastKVPressurePolicy,
    PredictedLatencyPolicy.name: PredictedLatencyPolicy,
    CalibratedLatencyPolicy.name: CalibratedLatencyPolicy,
}

#: Deterministic enumeration order for sweeps and CLI defaults.
POLICY_NAMES: Tuple[str, ...] = tuple(sorted(ROUTING_POLICIES))


def make_policy(name: str) -> RoutingPolicy:
    """Instantiate a registered routing policy by name."""
    try:
        return ROUTING_POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown routing policy {name!r}; available: {', '.join(POLICY_NAMES)}"
        ) from None
