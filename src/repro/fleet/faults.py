"""Fault schedules: seeded, deterministic chaos for fleet simulations.

Real edge fleets are not the perfectly healthy cluster PRs 4–7 model:
boxes crash and cold-start (EdgeFlow shows the re-warm — streaming the
weight image back through DRAM — dominates recovery latency on mobile
LLMs), and low-power deployments brown out (DVFS, thermal throttling)
long before they fail. This module describes those events as data:

* :class:`ShardFault` — one scheduled event: a **crash** (the shard
  loses all queued and in-flight work, then stays down for
  ``duration_s`` *plus* the modeled cold-start re-warm) or a
  **brownout** (effective DRAM bandwidth drops to ``bandwidth_factor``
  of nominal for ``duration_s``, scaling step latencies by its
  inverse).
* :class:`FaultSchedule` — an immutable, time-sorted set of faults the
  :class:`~repro.fleet.FleetSimulator` injects into its next-event
  calendar. :meth:`FaultSchedule.none` is the explicit zero-fault
  schedule — running with it is bit-identical to not passing one.
* :data:`FAULT_SCENARIOS` — named seeded scenario factories
  (``none`` / ``crash`` / ``cascade`` / ``brownout`` / ``chaos``) so
  CLI flags and sweep axes can name a failure pattern that scales with
  the workload's time span and shard count.

Everything is deterministic: scenario factories draw from one
``random.Random(seed)``, and the re-warm cost is a closed-form function
of the engine's (packed) weight-image size and DRAM bandwidth — so one
seed maps to exactly one chaos timeline.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..core.meadow import MeadowEngine
from ..errors import ConfigError

__all__ = [
    "FaultKind",
    "ShardFault",
    "FaultSchedule",
    "weight_image_bytes",
    "rewarm_s",
    "FAULT_SCENARIOS",
    "FAULT_SCENARIO_NAMES",
    "make_fault_schedule",
]


class FaultKind(enum.Enum):
    """What goes wrong with a shard."""

    #: The shard dies: queued + in-flight work is lost, the box is down
    #: for ``duration_s`` plus the cold-start re-warm of its engine.
    CRASH = "crash"
    #: Effective DRAM bandwidth drops to ``bandwidth_factor`` of
    #: nominal for ``duration_s`` (DVFS / thermal throttling).
    BROWNOUT = "brownout"


@dataclass(frozen=True)
class ShardFault:
    """One scheduled fault event on one shard."""

    kind: FaultKind
    shard_id: int
    #: Simulated instant the fault strikes.
    at_s: float
    #: Crash: outage before recovery *begins* (re-warm is added on
    #: top). Brownout: how long the degradation lasts.
    duration_s: float
    #: Brownouts only: the fraction of nominal bandwidth that remains
    #: (0 < factor < 1). Ignored for crashes.
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ConfigError(f"shard_id must be >= 0, got {self.shard_id}")
        if self.at_s < 0:
            raise ConfigError(f"at_s must be >= 0, got {self.at_s}")
        if self.duration_s <= 0:
            raise ConfigError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if self.kind is FaultKind.BROWNOUT and not (
            0.0 < self.bandwidth_factor < 1.0
        ):
            raise ConfigError(
                f"brownout bandwidth_factor must be in (0, 1), got "
                f"{self.bandwidth_factor}"
            )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, deterministically ordered set of shard faults.

    Faults are stored sorted by ``(at_s, shard_id, kind)`` — the total
    order the fleet loop injects them in, so schedule construction
    order can never change a timeline.
    """

    name: str = "none"
    faults: Tuple[ShardFault, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.faults,
                key=lambda f: (f.at_s, f.shard_id, f.kind.value),
            )
        )
        if ordered != self.faults:
            object.__setattr__(self, "faults", ordered)

    @classmethod
    def none(cls) -> "FaultSchedule":
        """The explicit zero-fault schedule (bit-identical to no faults)."""
        return cls(name="none", faults=())

    @property
    def is_empty(self) -> bool:
        """True when no fault is scheduled."""
        return not self.faults

    def for_fleet(self, n_shards: int) -> "FaultSchedule":
        """Validate shard ids against a fleet size (returns self)."""
        for fault in self.faults:
            if fault.shard_id >= n_shards:
                raise ConfigError(
                    f"fault targets shard {fault.shard_id} but the fleet "
                    f"has only {n_shards} shards"
                )
        return self


# ------------------------------------------------------------- cold start
def weight_image_bytes(engine: MeadowEngine) -> int:
    """The resident weight image a recovering shard must re-stream.

    Plans that pack weights hold the *packed* image in DRAM (that is
    the point of MEADOW's data packing — the reclaimed space became KV
    budget at deployment time), so recovery re-streams packed bits.
    Plans without packing pay for the raw image.
    """
    try:
        return engine.packing_summary().packed_bits // 8
    except ConfigError:
        model, config = engine.model, engine.config
        return model.total_weight_params * config.weight_bits // 8


def rewarm_s(engine: MeadowEngine) -> float:
    """EdgeFlow-style cold-start cost: weight image over DRAM bandwidth.

    A crashed box that comes back has an empty DRAM: before it can
    serve a single token it must stream its (packed) weight image back
    in at the configured bandwidth. This is the closed-form lower
    bound EdgeFlow measures as the dominant term of mobile LLM cold
    starts; it is charged on top of every crash's outage window.
    """
    bytes_per_s = engine.config.dram_bandwidth_gbps * 1e9 / 8
    return weight_image_bytes(engine) / bytes_per_s


# -------------------------------------------------------------- scenarios
def _scenario_none(
    n_shards: int, span_s: float, seed: int
) -> FaultSchedule:
    return FaultSchedule.none()


def _scenario_crash(
    n_shards: int, span_s: float, seed: int
) -> FaultSchedule:
    """One crash mid-stream on shard 0, down for a quarter of the span."""
    return FaultSchedule(
        name="crash",
        faults=(
            ShardFault(
                FaultKind.CRASH,
                shard_id=0,
                at_s=0.5 * span_s,
                duration_s=max(0.25 * span_s, 1e-3),
            ),
        ),
    )


def _scenario_cascade(
    n_shards: int, span_s: float, seed: int
) -> FaultSchedule:
    """Every shard (but the last) crashes in turn — rolling failure."""
    victims = max(1, n_shards - 1)
    step = span_s / (victims + 1)
    return FaultSchedule(
        name="cascade",
        faults=tuple(
            ShardFault(
                FaultKind.CRASH,
                shard_id=i,
                at_s=(i + 1) * step,
                duration_s=max(0.5 * step, 1e-3),
            )
            for i in range(victims)
        ),
    )


def _scenario_brownout(
    n_shards: int, span_s: float, seed: int
) -> FaultSchedule:
    """Shard 0 throttles to a quarter of its bandwidth mid-stream."""
    return FaultSchedule(
        name="brownout",
        faults=(
            ShardFault(
                FaultKind.BROWNOUT,
                shard_id=0,
                at_s=0.25 * span_s,
                duration_s=max(0.5 * span_s, 1e-3),
                bandwidth_factor=0.25,
            ),
        ),
    )


def _scenario_chaos(
    n_shards: int, span_s: float, seed: int
) -> FaultSchedule:
    """Seeded mixed chaos: ~one fault per shard, crash or brownout."""
    rng = random.Random(seed)
    faults = []
    for shard_id in range(n_shards):
        kind = FaultKind.CRASH if rng.random() < 0.5 else FaultKind.BROWNOUT
        at_s = rng.uniform(0.1, 0.9) * span_s
        duration_s = max(rng.uniform(0.05, 0.3) * span_s, 1e-3)
        faults.append(
            ShardFault(
                kind,
                shard_id=shard_id,
                at_s=at_s,
                duration_s=duration_s,
                bandwidth_factor=(
                    rng.uniform(0.1, 0.5)
                    if kind is FaultKind.BROWNOUT
                    else 1.0
                ),
            )
        )
    return FaultSchedule(name="chaos", faults=tuple(faults))


#: Named scenario factories: ``(n_shards, span_s, seed) -> schedule``.
#: ``span_s`` is the workload's initial-arrival span, so one scenario
#: name scales across streams of any length.
FAULT_SCENARIOS: Dict[str, Callable[[int, float, int], FaultSchedule]] = {
    "none": _scenario_none,
    "crash": _scenario_crash,
    "cascade": _scenario_cascade,
    "brownout": _scenario_brownout,
    "chaos": _scenario_chaos,
}

#: Deterministic enumeration order for CLI choices and sweep grids.
FAULT_SCENARIO_NAMES: Tuple[str, ...] = tuple(sorted(FAULT_SCENARIOS))


def make_fault_schedule(
    name: str, n_shards: int, span_s: float, seed: int = 0
) -> FaultSchedule:
    """Instantiate a named fault scenario for one fleet and workload."""
    try:
        factory = FAULT_SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown fault scenario {name!r}; available: "
            f"{', '.join(FAULT_SCENARIO_NAMES)}"
        ) from None
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    if span_s < 0:
        raise ConfigError(f"span_s must be >= 0, got {span_s}")
    # Degenerate spans (a single-burst stream arrives at t=0) still get
    # a meaningful schedule: pretend the stream spans one second.
    return factory(n_shards, span_s if span_s > 0 else 1.0, seed)
