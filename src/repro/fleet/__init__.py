"""Fleet-scale serving: multi-engine sharding, routing, Pareto sweeps.

Layers a fleet of :class:`~repro.serving.ContinuousBatchingScheduler`
shards — each backed by its own (possibly heterogeneous)
:class:`~repro.core.MeadowEngine` — under one global request stream:

* :mod:`repro.fleet.routing` — pluggable placement policies
  (round-robin, join-shortest-queue, least-KV-pressure, and the
  surface-informed predicted-latency router);
* :mod:`repro.fleet.simulator` — the two-level discrete-event fleet
  loop with per-shard event logs and conservation guarantees;
* :mod:`repro.fleet.metrics` — merging shard results into fleet-wide
  percentiles, throughput and exact peak-KV;
* :mod:`repro.fleet.sweep` — the surface-powered
  ``(engines x policy x max_batch x ctx_bucket)`` Pareto sweep driver.
"""

from .metrics import merge_results, merged_peak_kv_bytes
from .routing import (
    JoinShortestQueuePolicy,
    LeastKVPressurePolicy,
    POLICY_NAMES,
    PredictedLatencyPolicy,
    ROUTING_POLICIES,
    RoundRobinPolicy,
    RoutingPolicy,
    make_policy,
)
from .simulator import (
    FleetReport,
    FleetResult,
    FleetSimulator,
    RoutingDecision,
    TTFTCalibration,
)
from .sweep import (
    FleetSweepResult,
    SWEEP_SCHEMA_VERSION,
    SweepDriver,
    SweepPoint,
)

__all__ = [
    "RoutingPolicy",
    "RoundRobinPolicy",
    "JoinShortestQueuePolicy",
    "LeastKVPressurePolicy",
    "PredictedLatencyPolicy",
    "ROUTING_POLICIES",
    "POLICY_NAMES",
    "make_policy",
    "RoutingDecision",
    "TTFTCalibration",
    "FleetResult",
    "FleetReport",
    "FleetSimulator",
    "merge_results",
    "merged_peak_kv_bytes",
    "SweepPoint",
    "FleetSweepResult",
    "SweepDriver",
    "SWEEP_SCHEMA_VERSION",
]
