"""Fleet-scale serving: multi-engine sharding, routing, Pareto sweeps.

Layers a fleet of :class:`~repro.serving.ContinuousBatchingScheduler`
shards — each backed by its own (possibly heterogeneous)
:class:`~repro.core.MeadowEngine` — under one global request stream:

* :mod:`repro.fleet.routing` — pluggable placement policies
  (round-robin, join-shortest-queue, least-KV-pressure, the
  surface-informed predicted-latency router, and its
  calibration-fed ``calibrated-latency`` variant);
* :mod:`repro.fleet.simulator` — the event-calendar discrete-event
  fleet loop with per-shard event logs, optional work stealing and
  conservation guarantees;
* :mod:`repro.fleet.metrics` — merging shard results into fleet-wide
  percentiles, throughput and exact peak-KV;
* :mod:`repro.fleet.sweep` — the surface-powered
  ``(engines x policy x max_batch x ctx_bucket x steal)`` Pareto
  sweep driver with an optional energy-per-token ceiling, serial or
  fanned over a process pool (``workers=N``, bit-identical);
* :mod:`repro.fleet.planner` — the closed-form M/G/1-style capacity
  planner answering "how many engines for this rate at this p99
  TTFT target" in O(1), validated against the simulator;
* :mod:`repro.fleet.faults` — seeded deterministic fault schedules
  (crashes with EdgeFlow-style cold-start re-warm, bandwidth
  brownouts) injected into the fleet's event calendar;
* :mod:`repro.fleet.resilience` — deadline-aware retry policies,
  graceful load shedding, and exactly-once request-disposition
  accounting (availability, goodput, lost work).
"""

from .faults import (
    FAULT_SCENARIO_NAMES,
    FAULT_SCENARIOS,
    FaultKind,
    FaultSchedule,
    ShardFault,
    make_fault_schedule,
    rewarm_s,
    weight_image_bytes,
)
from .metrics import merge_results, merged_peak_kv_bytes
from .planner import (
    CapacityPlanner,
    FleetForecast,
    PLANNER_P99_REL_ERR_BOUND,
    ShardForecast,
    ValidationRecord,
    WorkloadModel,
    validate_planner,
)
from .resilience import (
    AppliedFault,
    DeadlineShedding,
    Disposition,
    DropOldestShedding,
    NoShedding,
    ResilienceReport,
    RetryPolicy,
    SHEDDING_NAMES,
    SHEDDING_POLICIES,
    SheddingPolicy,
    make_shedding,
)
from .routing import (
    CalibratedLatencyPolicy,
    JoinShortestQueuePolicy,
    LeastKVPressurePolicy,
    POLICY_NAMES,
    PredictedLatencyPolicy,
    ROUTING_POLICIES,
    RoundRobinPolicy,
    RoutingPolicy,
    make_policy,
)
from .simulator import (
    FleetReport,
    FleetResult,
    FleetSimulator,
    RoutingDecision,
    TTFTCalibration,
)
from .sweep import (
    FleetSweepResult,
    SWEEP_SCHEMA_VERSION,
    SweepDriver,
    SweepPoint,
)

__all__ = [
    "RoutingPolicy",
    "RoundRobinPolicy",
    "JoinShortestQueuePolicy",
    "LeastKVPressurePolicy",
    "PredictedLatencyPolicy",
    "CalibratedLatencyPolicy",
    "ROUTING_POLICIES",
    "POLICY_NAMES",
    "make_policy",
    "RoutingDecision",
    "TTFTCalibration",
    "FleetResult",
    "FleetReport",
    "FleetSimulator",
    "merge_results",
    "merged_peak_kv_bytes",
    "SweepPoint",
    "FleetSweepResult",
    "SweepDriver",
    "SWEEP_SCHEMA_VERSION",
    "CapacityPlanner",
    "WorkloadModel",
    "FleetForecast",
    "ShardForecast",
    "ValidationRecord",
    "validate_planner",
    "PLANNER_P99_REL_ERR_BOUND",
    "FaultKind",
    "ShardFault",
    "FaultSchedule",
    "FAULT_SCENARIOS",
    "FAULT_SCENARIO_NAMES",
    "make_fault_schedule",
    "weight_image_bytes",
    "rewarm_s",
    "Disposition",
    "RetryPolicy",
    "SheddingPolicy",
    "NoShedding",
    "DeadlineShedding",
    "DropOldestShedding",
    "SHEDDING_POLICIES",
    "SHEDDING_NAMES",
    "make_shedding",
    "AppliedFault",
    "ResilienceReport",
]
