"""CapacityPlanner: closed-form fleet answers from surface points.

The sweep answers "which configuration is best" by simulating every grid
point; this module answers the capacity question — *how many engines for
this arrival rate at this p99 TTFT target* — without simulating at all.
Each shard is modeled as an M/G/1 queue with non-preemptive prefill
priority (prefills always run before decode iterations, exactly the
scheduler's policy, so an arriving prefill waits only for queued
prefills and the decode iteration in progress). Service times come from
the same :class:`~repro.sim.surface.LatencySurface` points the simulator
uses, so the model and the simulator share one notion of hardware speed;
the only thing the planner abstracts away is queueing dynamics.

Model summary, per shard at arrival rate λ:

* a workload sample (:class:`WorkloadModel`) fixes the prompt/output
  length mixture; per-sample prefill latencies and decode spans are read
  off the surface.
* the operating decode batch ``b`` solves the Little's-law fixpoint
  ``b = ceil(λ·E[span(b)] / (1 - ρ_p))`` — the mean number of requests
  inside their decode phase, whose wall-clock duration stretches by the
  prefill share of the server — then escalates while a deeper batch is
  needed to drain the offered decode work (decode cost is sublinear in
  batch, so backlog self-stabilizes at a deeper batch exactly as the
  scheduler's decode list grows toward ``max_batch``).
* utilization splits into prefill work ``ρ_p = λ·E[S_p]`` and decode
  work ``ρ_d = λ·E[span(b)]/b`` (an iteration at batch ``b`` advances
  ``b`` requests). Throughput stability requires ``ρ_p + ρ_d < 1`` —
  but TTFT stays *bounded* even when decode saturates, because prefills
  preempt decode at iteration granularity; only ``ρ_p ≥ 1`` sends TTFT
  to infinity. The forecast reports both.
* a new arrival's prefill delay follows the Pollaczek–Khinchine
  high-priority wait ``W = R / (1 - ρ_p)`` with residual work
  ``R = λ·E[S_p²]/2 + P(decode) · d̄(b)/2`` (``d̄``: one decode
  iteration at the mixture's mean context; ``P(decode)`` the chance the
  arrival lands mid-iteration).
* TTFT quantiles come from the mixture CDF of ``wait + prefill(p_i)``
  with an exponential tail on the wait (an atom at zero when the
  arrival finds nothing blocking).
* fleet load splits at the *latency-equalizing* (Wardrop) equilibrium:
  arrivals spread so every shard that receives traffic has the same
  mean TTFT, and shards whose empty-queue TTFT already exceeds that
  level receive none — the idealization of what the predicted-latency
  router converges to. (A fast/slow fleet at moderate load routes
  everything to the fast boxes; capacity-proportional splitting would
  wrongly charge the fleet p99 with slow-box prefills the router never
  schedules.) Shard TTFT mixtures then merge arrival-weighted into
  fleet quantiles.
* ``k`` same-speed shards sharing traffic are not independent queues:
  the router sends each arrival to the currently cheapest shard, which
  in heavy traffic achieves *complete resource pooling* — the group
  behaves like one server of ``k``-fold speed at the same utilization,
  dividing the queueing wait by ``k`` (an M/G/1 with arrival ``kλ``
  and service ``S/k`` has ``E[W] = E[W_1]/k``). The forecast applies
  that pooling factor per same-bandwidth group.

Every number is a handful of dict lookups and bisections — O(1) in
stream length and fleet size, which is what makes
:meth:`CapacityPlanner.engines_for` an interactive query where the sweep
takes minutes. The price is abstraction: KV admission stalls, burst
correlation and routing transients are not modeled. The
:func:`validate_planner` harness quantifies that gap against the real
simulator and CI enforces the documented bound
(:data:`PLANNER_P99_REL_ERR_BOUND`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.meadow import MeadowEngine
from ..errors import ConfigError
from ..serving.request import LengthDistribution, RequestSource, poisson_stream
from .sweep import SweepDriver

__all__ = [
    "PLANNER_P99_REL_ERR_BOUND",
    "WorkloadModel",
    "ShardForecast",
    "FleetForecast",
    "CapacityPlanner",
    "ValidationRecord",
    "validate_planner",
]

#: Documented planner-vs-simulator relative error bound on p99 TTFT for
#: the benchmark fleet mixes (see ``benchmarks/bench_capacity_planner.py``,
#: which measures and enforces it in CI). The planner abstracts KV
#: admission, burst correlation and finite-stream effects, so its p99 is
#: a steady-state estimate, not a replay.
PLANNER_P99_REL_ERR_BOUND = 0.35


@dataclass(frozen=True)
class WorkloadModel:
    """A frozen sample of the request-length mixture.

    The planner is distribution-driven: it needs the joint
    (prompt, output) length mixture, not arrival times. ``from_dists``
    draws the sample the same way the stream generators do (prompt then
    output per request from one seeded RNG), so a planner built from the
    same distributions as a benchmark stream models the same traffic.
    """

    prompt_tokens: Tuple[int, ...]
    output_tokens: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.prompt_tokens:
            raise ConfigError("workload model needs at least one sample")
        if len(self.prompt_tokens) != len(self.output_tokens):
            raise ConfigError(
                f"prompt/output sample lengths differ: "
                f"{len(self.prompt_tokens)} vs {len(self.output_tokens)}"
            )
        if min(self.prompt_tokens) < 1 or min(self.output_tokens) < 1:
            raise ConfigError("workload samples must be >= 1 token")

    @classmethod
    def from_dists(
        cls,
        prompt_dist: LengthDistribution,
        output_dist: LengthDistribution,
        n_samples: int = 128,
        seed: int = 0,
    ) -> "WorkloadModel":
        """Sample the mixture with the stream generators' draw order."""
        if n_samples < 1:
            raise ConfigError(f"n_samples must be >= 1, got {n_samples}")
        rng = random.Random(seed)
        prompts: List[int] = []
        outputs: List[int] = []
        for _ in range(n_samples):
            prompts.append(prompt_dist.sample(rng))
            outputs.append(output_dist.sample(rng))
        return cls(tuple(prompts), tuple(outputs))

    @property
    def n_samples(self) -> int:
        return len(self.prompt_tokens)

    @property
    def mean_output_tokens(self) -> float:
        return sum(self.output_tokens) / len(self.output_tokens)


@dataclass(frozen=True)
class ShardForecast:
    """Steady-state prediction for one shard at one arrival rate."""

    bandwidth_gbps: float
    arrival_rate_rps: float
    #: Fraction of the shard's time doing work (prefill + decode).
    utilization: float
    #: ``False`` when offered load exceeds drain capacity. TTFT stays
    #: finite as long as prefill work alone fits (prefill priority);
    #: decode backlog and end-to-end latency grow without bound.
    stable: bool
    #: Operating decode batch (Little's-law fixpoint, clamped to
    #: [1, max_batch]; 0 for a shard the router sends no traffic).
    decode_batch: int
    ttft_p50_s: float
    ttft_p99_s: float
    #: Delivered generation throughput (tokens/s), capacity-capped when
    #: unstable.
    throughput_tok_s: float


@dataclass(frozen=True)
class FleetForecast:
    """Fleet-level steady-state prediction (merged over shards)."""

    n_engines: int
    rate_rps: float
    shards: Tuple[ShardForecast, ...]
    ttft_p50_s: float
    ttft_p99_s: float
    throughput_tok_s: float
    #: Arrival-weighted mean shard utilization.
    utilization: float
    stable: bool

    def format_report(self) -> str:
        lines = [
            f"capacity forecast: {self.n_engines} engine(s) at "
            f"{self.rate_rps:.3f} req/s — "
            + ("stable" if self.stable else "OVERLOADED"),
            f"  utilization {self.utilization * 100:.1f}%   "
            f"throughput {self.throughput_tok_s:.1f} tok/s",
            f"  TTFT p50 {_fmt_ms(self.ttft_p50_s)}   "
            f"p99 {_fmt_ms(self.ttft_p99_s)}",
        ]
        for i, s in enumerate(self.shards):
            lines.append(
                f"  shard {i} ({s.bandwidth_gbps:g} Gbps): "
                f"{s.arrival_rate_rps:.3f} req/s  "
                f"rho {s.utilization * 100:.1f}%  batch {s.decode_batch}  "
                f"p99 TTFT {_fmt_ms(s.ttft_p99_s)}"
            )
        return "\n".join(lines)


def _fmt_ms(seconds: float) -> str:
    return "inf" if math.isinf(seconds) else f"{seconds * 1e3:.3f} ms"


@dataclass(frozen=True)
class _WaitParams:
    """Solved queueing state of one shard at one arrival rate."""

    batch: int
    rho_p: float
    rho_d: float
    #: Total utilization (can exceed 1: offered load, not time share).
    rho: float
    #: Probability an arriving prefill finds blocking work (queued
    #: prefills or a decode iteration in progress).
    rho_wait: float
    #: P-K mean wait before the arrival's own prefill starts.
    mean_wait_s: float


class _ShardModel:
    """Analytical service model of one engine under one workload.

    Per-sample prefill latencies are computed once; per-batch decode
    spans are memoized surface walks. After warm-up every steady-state
    solve is O(max_batch) float arithmetic — no per-sample loops — so
    the Wardrop split's nested bisections stay interactive.
    """

    def __init__(
        self,
        engine: MeadowEngine,
        workload: WorkloadModel,
        max_batch: int,
        ctx_bucket: int,
        interpolate: bool,
    ) -> None:
        max_len = engine.model.max_seq_len
        if max(workload.prompt_tokens) >= max_len:
            raise ConfigError(
                f"workload prompt of {max(workload.prompt_tokens)} tokens "
                f"does not fit model max_seq_len {max_len}"
            )
        self.engine = engine
        self.workload = workload
        self.max_batch = max_batch
        self.ctx_bucket = ctx_bucket
        self.interpolate = interpolate
        surface = engine.surface
        self.prefill_s = tuple(
            surface.prefill(p, interpolate=interpolate).latency_s
            for p in workload.prompt_tokens
        )
        n = workload.n_samples
        self.mean_prefill_s = sum(self.prefill_s) / n
        self.mean_prefill_sq = sum(s * s for s in self.prefill_s) / n
        self._mean_spans: Dict[int, float] = {}
        self._mean_steps: Dict[int, float] = {}

    # ------------------------------------------------------------ service
    def decode_spans(self, batch: int) -> Tuple[float, ...]:
        """Per-sample decode-phase duration at a fixed batch size.

        Walks contexts ``p+1 .. p+o-1`` in :meth:`LatencySurface
        .decode_run` jumps (``o-1`` post-prefill tokens), mirroring the
        scheduler's bucketed lookups, clamped at the model's context
        window the same way the scheduler saturates.
        """
        surface = self.engine.surface
        max_len = self.engine.model.max_seq_len
        out: List[float] = []
        for p, o in zip(self.workload.prompt_tokens, self.workload.output_tokens):
            total = 0.0
            ctx = p + 1
            end = min(p + o - 1, max_len)
            while ctx <= end:
                point, run = surface.decode_run(
                    ctx, batch=batch, ctx_bucket=self.ctx_bucket,
                    interpolate=self.interpolate,
                )
                take = min(run, end - ctx + 1)
                total += take * point.latency_s
                ctx += take
            out.append(total)
        return tuple(out)

    def mean_span_s(self, batch: int) -> float:
        span = self._mean_spans.get(batch)
        if span is None:
            spans = self.decode_spans(batch)
            span = sum(spans) / len(spans)
            self._mean_spans[batch] = span
        return span

    def mean_step_s(self, batch: int) -> float:
        """One decode iteration at the mixture's mean context."""
        step = self._mean_steps.get(batch)
        if step is None:
            mean_ctx = int(
                sum(self.workload.prompt_tokens) / self.workload.n_samples
                + self.workload.mean_output_tokens / 2
            )
            mean_ctx = max(1, min(mean_ctx, self.engine.model.max_seq_len))
            point, _ = self.engine.surface.decode_run(
                mean_ctx, batch=batch, ctx_bucket=self.ctx_bucket,
                interpolate=self.interpolate,
            )
            step = point.latency_s
            self._mean_steps[batch] = step
        return step

    @property
    def max_rate_rps(self) -> float:
        """The prefill-saturation rate — beyond it TTFT is unbounded."""
        return 0.99 / self.mean_prefill_s

    # ------------------------------------------------------ steady state
    def wait_params(self, rate_rps: float) -> _WaitParams:
        """Solve the shard's queueing state at one arrival rate."""
        if rate_rps <= 0:
            raise ConfigError(f"rate_rps must be positive, got {rate_rps}")
        rho_p = rate_rps * self.mean_prefill_s
        decode_share = max(1e-9, 1.0 - rho_p)

        batch = 1
        seen = set()
        for _ in range(2 * self.max_batch + 4):
            target = max(1, min(
                self.max_batch,
                math.ceil(rate_rps * self.mean_span_s(batch) / decode_share),
            ))
            if target == batch:
                break
            if target in seen:
                batch = max(batch, target)
                break
            seen.add(batch)
            batch = target
        # Escalate while this batch cannot drain the offered decode work
        # (λ·E[span(b)]/b server-seconds per second against the
        # ``1 - ρ_p`` share prefills leave) but a deeper one could.
        while (
            batch < self.max_batch
            and rate_rps * self.mean_span_s(batch) / batch >= decode_share
        ):
            batch += 1

        rho_d = rate_rps * self.mean_span_s(batch) / batch
        rho = rho_p + rho_d
        p_decode = min(rho_d, decode_share)
        residual = (
            rate_rps * self.mean_prefill_sq / 2.0
            + p_decode * self.mean_step_s(batch) / 2.0
        )
        return _WaitParams(
            batch=batch,
            rho_p=rho_p,
            rho_d=rho_d,
            rho=rho,
            rho_wait=min(1.0, rho_p + p_decode),
            mean_wait_s=residual / decode_share,
        )

    def mean_ttft_s(self, rate_rps: float) -> float:
        """Mean TTFT at one rate — the Wardrop equilibrium's currency."""
        if rate_rps <= 0.0:
            return self.mean_prefill_s
        if rate_rps * self.mean_prefill_s >= 1.0:
            return math.inf
        return self.wait_params(rate_rps).mean_wait_s + self.mean_prefill_s

    def rate_for_mean_ttft(self, target_s: float) -> float:
        """The arrival rate at which mean TTFT reaches ``target_s``.

        Zero when even an empty queue exceeds the target (the router
        sends such a shard nothing); capped at the prefill-saturation
        rate.
        """
        if target_s <= self.mean_prefill_s:
            return 0.0
        lo, hi = 0.0, self.max_rate_rps
        if self.mean_ttft_s(hi) <= target_s:
            return hi
        for _ in range(50):
            mid = (lo + hi) / 2.0
            if self.mean_ttft_s(mid) <= target_s:
                lo = mid
            else:
                hi = mid
        return lo

    def solve(
        self, rate_rps: float, bandwidth_gbps: float, pooling: int = 1
    ) -> ShardForecast:
        """Steady-state forecast of this shard at ``rate_rps`` arrivals.

        ``rate_rps == 0`` yields the idle forecast (the Wardrop split
        legitimately starves slow shards at moderate load). ``pooling``
        is the number of same-speed shards this one shares traffic
        with — the router's load balancing divides queueing wait across
        the group (complete resource pooling).
        """
        mean_out = self.workload.mean_output_tokens
        if rate_rps <= 0.0:
            cdf = self.ttft_cdf(0.0, 0.0)
            return ShardForecast(
                bandwidth_gbps=bandwidth_gbps,
                arrival_rate_rps=0.0,
                utilization=0.0,
                stable=True,
                decode_batch=0,
                ttft_p50_s=_quantile(cdf, 0.50, max(self.prefill_s) + 1e-9),
                ttft_p99_s=_quantile(cdf, 0.99, max(self.prefill_s) + 1e-9),
                throughput_tok_s=0.0,
            )
        rho_p = rate_rps * self.mean_prefill_s
        if rho_p >= 1.0:
            # Prefill work alone exceeds the server: TTFT diverges.
            return ShardForecast(
                bandwidth_gbps=bandwidth_gbps,
                arrival_rate_rps=rate_rps,
                utilization=rho_p,
                stable=False,
                decode_batch=self.max_batch,
                ttft_p50_s=math.inf,
                ttft_p99_s=math.inf,
                throughput_tok_s=self._capacity_rps() * mean_out,
            )
        params = self.wait_params(rate_rps)
        wait = params.mean_wait_s / max(1, pooling)
        cdf = self.ttft_cdf(params.rho_wait, wait)
        hi = self._ttft_hi(params.rho_wait, wait)
        stable = params.rho < 1.0
        return ShardForecast(
            bandwidth_gbps=bandwidth_gbps,
            arrival_rate_rps=rate_rps,
            utilization=params.rho,
            stable=stable,
            decode_batch=params.batch,
            ttft_p50_s=_quantile(cdf, 0.50, hi),
            ttft_p99_s=_quantile(cdf, 0.99, hi),
            throughput_tok_s=(
                rate_rps if stable else min(rate_rps, self._capacity_rps())
            ) * mean_out,
        )

    def _capacity_rps(self) -> float:
        """Drain capacity at the deepest batch (request completions/s)."""
        return 1.0 / (
            self.mean_prefill_s + self.mean_span_s(self.max_batch) / self.max_batch
        )

    def ttft_cdf(
        self, rho_wait: float, mean_wait_s: float
    ) -> Callable[[float], float]:
        """CDF of TTFT = wait + prefill(p_i) over the length mixture.

        The wait is zero with probability ``1 - rho_wait`` (arrival
        finds nothing blocking) and exponential with mean
        ``mean_wait_s / rho_wait`` otherwise, preserving the P-K mean
        exactly.
        """
        prefills = self.prefill_s
        n = len(prefills)

        def cdf(t: float) -> float:
            total = 0.0
            for s in prefills:
                dt = t - s
                if dt < 0:
                    continue
                if rho_wait <= 0.0 or mean_wait_s <= 0.0:
                    total += 1.0
                else:
                    total += 1.0 - rho_wait * math.exp(
                        -dt * rho_wait / mean_wait_s
                    )
            return total / n

        return cdf

    def _ttft_hi(self, rho_wait: float, mean_wait_s: float) -> float:
        """An upper bracket for TTFT quantile bisection."""
        hi = max(self.prefill_s)
        if rho_wait > 0.0 and mean_wait_s > 0.0:
            hi += (mean_wait_s / rho_wait) * math.log(1e4)
        return hi * 1.5 + 1e-9


def _quantile(cdf: Callable[[float], float], q: float, hi: float) -> float:
    """Invert a monotone CDF by bisection on [0, hi]."""
    while cdf(hi) < q:
        hi *= 2.0
    lo = 0.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if cdf(mid) >= q:
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2.0


class CapacityPlanner:
    """O(1) capacity answers for fleets cloned off one base deployment.

    Mirrors :class:`~repro.fleet.sweep.SweepDriver`'s fleet shape —
    one engine per distinct bandwidth, profile cycled across shards —
    but replaces simulation with per-shard steady-state queueing solved
    from surface points.

    Args:
        base_engine: deployment to fan out (shares planner/surface
            conventions with the sweep driver).
        bandwidths_gbps: per-shard bandwidth profile, cycled like
            :meth:`SweepDriver.fleet_profile`.
        workload: the request-length mixture to plan for.
        max_batch / ctx_bucket: the scheduler knobs the fleet would run
            with — they change modeled decode cost, so they change
            capacity.
        interpolate: allow guarded surface interpolation when filling
            the model's lookup points (planner answers then inherit the
            surface's ``interp_rel_err`` bound on top of the queueing
            approximation).
        interp_rel_err: override the per-shard surfaces' interpolation
            guard (``None`` keeps each surface's own setting).
        surface_store: optional :class:`~repro.sim.SurfaceStore`,
            forwarded to the internal :class:`SweepDriver` so shard
            surfaces warm-start across runs; call
            ``planner.driver.save_surfaces()`` to persist discoveries.
    """

    def __init__(
        self,
        base_engine: MeadowEngine,
        bandwidths_gbps: Sequence[float],
        workload: WorkloadModel,
        max_batch: int = 16,
        ctx_bucket: int = 1,
        interpolate: bool = False,
        interp_rel_err: Optional[float] = None,
        surface_store=None,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if ctx_bucket < 1:
            raise ConfigError(f"ctx_bucket must be >= 1, got {ctx_bucket}")
        self.driver = SweepDriver(
            base_engine, bandwidths_gbps, surface_store=surface_store
        )
        self.workload = workload
        self.max_batch = max_batch
        self.ctx_bucket = ctx_bucket
        self.interpolate = interpolate
        self.interp_rel_err = interp_rel_err
        self._models: Dict[float, _ShardModel] = {}

    def shard_model(self, bandwidth_gbps: float) -> _ShardModel:
        model = self._models.get(bandwidth_gbps)
        if model is None:
            engine = self.driver.engine_for(bandwidth_gbps)
            if self.interp_rel_err is not None:
                engine.surface.interp_rel_err = self.interp_rel_err
            model = _ShardModel(
                engine,
                self.workload,
                self.max_batch,
                self.ctx_bucket,
                self.interpolate,
            )
            self._models[bandwidth_gbps] = model
        return model

    # ------------------------------------------------------------- split
    def _split_rates(
        self, models: Sequence[_ShardModel], rate_rps: float
    ) -> List[float]:
        """Wardrop-equilibrium load split across (possibly unequal) shards.

        Bisects the common mean-TTFT level until the shard rates it
        implies absorb the offered load; shards whose empty-queue TTFT
        exceeds the level receive zero. When the fleet cannot absorb the
        load below prefill saturation, the remainder spreads in
        proportion to prefill capacity (every shard then reports
        instability).
        """
        if len(models) == 1:
            return [rate_rps]
        ceiling = sum(m.max_rate_rps for m in models)
        if rate_rps >= ceiling:
            return [
                rate_rps * m.max_rate_rps / ceiling for m in models
            ]
        lo = min(m.mean_prefill_s for m in models)
        hi = max(m.mean_prefill_s for m in models) * 2.0
        while sum(m.rate_for_mean_ttft(hi) for m in models) < rate_rps:
            hi *= 2.0
        for _ in range(50):
            mid = (lo + hi) / 2.0
            if sum(m.rate_for_mean_ttft(mid) for m in models) >= rate_rps:
                hi = mid
            else:
                lo = mid
        rates = [m.rate_for_mean_ttft(hi) for m in models]
        # Close the bisection residual so the split sums exactly.
        total = sum(rates)
        if total <= 0.0:
            return [rate_rps / len(models)] * len(models)
        return [r * rate_rps / total for r in rates]

    # ---------------------------------------------------------- forecasts
    def forecast(self, n_engines: int, rate_rps: float) -> FleetForecast:
        """Steady-state fleet forecast at ``rate_rps`` total arrivals."""
        if rate_rps <= 0:
            raise ConfigError(f"rate_rps must be positive, got {rate_rps}")
        profile = self.driver.fleet_profile(n_engines)
        models = [self.shard_model(b) for b in profile]
        rates = self._split_rates(models, rate_rps)
        # Same-bandwidth shards with traffic form one pooled group: the
        # router balances arrivals across them, dividing queueing wait.
        pooling: Dict[float, int] = {}
        for b, r in zip(profile, rates):
            if r > 0.0:
                pooling[b] = pooling.get(b, 0) + 1
        shards = tuple(
            m.solve(r, b, pooling=pooling.get(b, 1))
            for m, r, b in zip(models, rates, profile)
        )
        stable = all(s.stable for s in shards)
        throughput = sum(s.throughput_tok_s for s in shards)
        utilization = sum(
            s.utilization * s.arrival_rate_rps for s in shards
        ) / rate_rps
        finite = all(
            math.isfinite(s.ttft_p99_s)
            for s in shards
            if s.arrival_rate_rps > 0.0
        )
        if not finite:
            p50 = p99 = math.inf
        else:
            cdfs = []
            hi = 0.0
            for m, s, b in zip(models, shards, profile):
                if s.arrival_rate_rps <= 0.0:
                    continue
                params = m.wait_params(s.arrival_rate_rps)
                wait = params.mean_wait_s / max(1, pooling.get(b, 1))
                cdfs.append((
                    s.arrival_rate_rps,
                    m.ttft_cdf(params.rho_wait, wait),
                ))
                hi = max(hi, m._ttft_hi(params.rho_wait, wait))

            def merged(t: float) -> float:
                return sum(r * cdf(t) for r, cdf in cdfs) / rate_rps

            p50 = _quantile(merged, 0.50, hi)
            p99 = _quantile(merged, 0.99, hi)
        return FleetForecast(
            n_engines=n_engines,
            rate_rps=rate_rps,
            shards=shards,
            ttft_p50_s=p50,
            ttft_p99_s=p99,
            throughput_tok_s=throughput,
            utilization=utilization,
            stable=stable,
        )

    def engines_for(
        self,
        target_p99_ttft_s: float,
        rate_rps: float,
        max_engines: int = 64,
    ) -> FleetForecast:
        """Smallest stable fleet meeting the p99 TTFT target.

        Scans fleet sizes upward (each probe is O(1), so the scan is
        interactive even at hundreds of engines) and returns the first
        :class:`FleetForecast` that is throughput-stable with
        ``ttft_p99_s`` within target. Raises :class:`ConfigError` when
        even ``max_engines`` cannot meet it — e.g. a target below the
        no-load floor (the p99 prompt's prefill latency on the fastest
        shard).
        """
        if target_p99_ttft_s <= 0:
            raise ConfigError(
                f"target_p99_ttft_s must be positive, got {target_p99_ttft_s}"
            )
        last = None
        for n in range(1, max_engines + 1):
            forecast = self.forecast(n, rate_rps)
            last = forecast
            if forecast.stable and forecast.ttft_p99_s <= target_p99_ttft_s:
                return forecast
        assert last is not None
        raise ConfigError(
            f"no fleet of <= {max_engines} engines meets p99 TTFT "
            f"{target_p99_ttft_s * 1e3:.3f} ms at {rate_rps:g} req/s "
            f"(best at {max_engines}: {_fmt_ms(last.ttft_p99_s)})"
        )


# ------------------------------------------------------------- validation
@dataclass(frozen=True)
class ValidationRecord:
    """One planner-vs-simulator comparison point."""

    n_engines: int
    rate_rps: float
    n_requests: int
    predicted_p99_ttft_s: float
    simulated_p99_ttft_s: float
    rel_err: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "n_engines": self.n_engines,
            "rate_rps": self.rate_rps,
            "n_requests": self.n_requests,
            "predicted_p99_ttft_s": self.predicted_p99_ttft_s,
            "simulated_p99_ttft_s": self.simulated_p99_ttft_s,
            "rel_err": self.rel_err,
        }


def validate_planner(
    planner: CapacityPlanner,
    prompt_dist: LengthDistribution,
    output_dist: LengthDistribution,
    mixes: Sequence[Tuple[int, float, int]],
    seed: int = 0,
    policy: str = "predicted-latency",
) -> List[ValidationRecord]:
    """Compare planner p99 TTFT against full fleet simulations.

    ``mixes`` is a sequence of ``(n_engines, rate_rps, n_requests)``
    scenarios; each is simulated as a seeded Poisson stream on the
    planner's fleet shape (same bandwidth profile, knobs and length
    distributions) and compared to :meth:`CapacityPlanner.forecast`.
    Returns one record per mix — callers assert ``rel_err`` against
    :data:`PLANNER_P99_REL_ERR_BOUND` (the benchmark does, in CI).
    """
    records: List[ValidationRecord] = []
    for n_engines, rate_rps, n_requests in mixes:
        source: RequestSource = poisson_stream(
            n_requests=n_requests,
            rate_rps=rate_rps,
            prompt_dist=prompt_dist,
            output_dist=output_dist,
            seed=seed,
        )
        report = planner.driver.run_point(
            source,
            n_engines,
            policy,
            max_batch=planner.max_batch,
            ctx_bucket=planner.ctx_bucket,
        )
        simulated = report.metrics.ttft.p99_s
        predicted = planner.forecast(n_engines, rate_rps).ttft_p99_s
        if simulated <= 0:
            raise ConfigError(
                f"mix ({n_engines}, {rate_rps}, {n_requests}) produced "
                f"no TTFT sample to validate against"
            )
        rel_err = (
            math.inf if math.isinf(predicted)
            else abs(predicted - simulated) / simulated
        )
        records.append(
            ValidationRecord(
                n_engines=n_engines,
                rate_rps=rate_rps,
                n_requests=n_requests,
                predicted_p99_ttft_s=predicted,
                simulated_p99_ttft_s=simulated,
                rel_err=rel_err,
            )
        )
    return records
