"""Merging per-shard serving results into one fleet-level summary.

The fleet simulator produces one :class:`~repro.serving.ServingResult`
per shard; capacity planning needs the *global* picture — percentiles
over every request regardless of where it was served, throughput over
the fleet-wide makespan, and the exact peak of summed KV reservations.
The merge reuses :class:`~repro.serving.FleetMetrics` as the summary
type, with one invariant the tests pin down: **merging the results of a
one-shard fleet reproduces the single-engine metrics field for field**
(same sorted latency populations, same makespan arithmetic), so fleet
numbers are directly comparable with `repro serve` output.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ConfigError
from ..sim.metrics import LatencySummary, tokens_per_second
from ..serving.metrics import FleetMetrics
from ..serving.scheduler import ServingResult

__all__ = ["merged_peak_kv_bytes", "merge_results"]


def merged_peak_kv_bytes(shard_results: Sequence[ServingResult]) -> int:
    """Exact peak of summed KV reservations across the fleet timeline.

    Every scheduler event snapshots its shard's reserved bytes *after*
    the change, so sweeping all events in global time order while
    tracking the latest value per shard yields the true fleet-wide
    peak — not the (looser) sum of per-shard peaks, which generally
    occur at different instants. Simultaneous events are applied in
    (time, shard id, shard-local order); the running sum after a tied
    group is order-independent, so the peak is deterministic.
    """
    tagged: List[Tuple[float, int, int, int]] = []
    for shard_id, result in enumerate(shard_results):
        tagged.extend(
            (ev.t_s, shard_id, seq, ev.kv_reserved_bytes)
            for seq, ev in enumerate(result.events)
        )
    tagged.sort(key=lambda item: (item[0], item[1], item[2]))
    # The running fleet total is maintained by per-shard delta — each
    # event replaces one shard's contribution — so the sweep costs
    # O(events), not O(shards * events).
    current = [0] * len(shard_results)
    total = 0
    peak = 0
    for _, shard_id, _, reserved in tagged:
        total += reserved - current[shard_id]
        current[shard_id] = reserved
        if total > peak:
            peak = total
    return peak


def merge_results(shard_results: Sequence[ServingResult]) -> FleetMetrics:
    """Fold per-shard results into one fleet-wide :class:`FleetMetrics`.

    * latency percentiles are computed over the union of all records;
    * the makespan runs from the earliest arrival to the latest
      completion anywhere in the fleet;
    * ``max_queue_depth`` is the worst single-shard backlog (queues are
      per shard, so depths do not add);
    * ``kv_budget_bytes`` is the fleet's aggregate budget, and
      ``peak_kv_bytes`` the exact merged-timeline peak.
    """
    if not shard_results:
        raise ConfigError("cannot merge an empty fleet")
    records = [rec for result in shard_results for rec in result.records]
    ttfts = [rec.ttft_s for rec in records]
    e2es = [rec.e2e_s for rec in records]
    tbts = [t for rec in records for t in rec.tbt_s]
    total_tokens = sum(rec.generated_tokens for rec in records)
    if records:
        first_arrival = min(rec.request.arrival_s for rec in records)
        last_finish = max(rec.finish_s for rec in records)
        duration = last_finish - first_arrival
    else:
        duration = 0.0
    return FleetMetrics(
        n_requests=len(records),
        duration_s=duration,
        total_generated_tokens=total_tokens,
        throughput_tok_s=tokens_per_second(total_tokens, duration),
        ttft=LatencySummary.of(ttfts),
        tbt=LatencySummary.of(tbts),
        e2e=LatencySummary.of(e2es),
        max_queue_depth=max(r.max_queue_depth for r in shard_results),
        peak_kv_bytes=merged_peak_kv_bytes(shard_results),
        kv_budget_bytes=sum(r.kv_budget_bytes for r in shard_results),
    )
