"""Resilience policies: retries, deadlines, shedding, and dispositions.

When :mod:`repro.fleet.faults` makes shards crash and brown out, the
fleet needs an answer to three questions this module parameterizes:

* **What happens to work a crash destroyed?**
  :class:`RetryPolicy` — deadline-aware exponential backoff with seeded
  jitter. A harvested request is resubmitted to the *global* router
  (failover re-routing: the retry sees the post-crash fleet, and the
  circuit breaker keeps it off the dead shard) until its retry budget
  or deadline runs out.
* **When should the fleet refuse work instead of degrading everyone?**
  :class:`SheddingPolicy` — graceful load shedding, either rejecting at
  admission when no shard can predictably meet the request's deadline
  (``deadline``), or evicting the oldest waiting request when a chosen
  shard's backlog exceeds a bound (``drop-oldest``).
* **What happened to each request, exactly once?**
  :class:`Disposition` — every submitted request ends in exactly one of
  OK / RETRIED / SHED / EXPIRED / LOST, and
  :meth:`ResilienceReport.build` *enforces* that conservation law,
  turning "did the chaos layer drop a request on the floor?" into a
  hard error instead of a silent accounting gap.

All randomness (retry jitter) is derived from ``(seed, request_id,
attempt)`` — never from global state or event order — so a same-seed
chaos run is bit-reproducible no matter how failures interleave.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..errors import ConfigError, SimulationError
from ..serving.request import Request
from ..serving.scheduler import SchedulerSnapshot
from .faults import FaultKind
from .routing import model_ttft_s

__all__ = [
    "Disposition",
    "RetryPolicy",
    "SheddingPolicy",
    "NoShedding",
    "DeadlineShedding",
    "DropOldestShedding",
    "SHEDDING_POLICIES",
    "SHEDDING_NAMES",
    "make_shedding",
    "AppliedFault",
    "ResilienceReport",
]


class Disposition(enum.Enum):
    """The one final fate of a submitted request."""

    #: Completed on its first placement, never disturbed by a fault.
    OK = "ok"
    #: Completed, but only after at least one failure-driven retry.
    RETRIED = "retried"
    #: Rejected or evicted by the shedding policy; never completed.
    SHED = "shed"
    #: Failed and past its deadline — retrying could not meet the SLO.
    EXPIRED = "expired"
    #: Failed with an exhausted retry budget (and no deadline to blame).
    LOST = "lost"


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware exponential backoff for failure-driven retries.

    After a crash destroys a request (waiting or mid-decode), the fleet
    resubmits it at ``t_fail + backoff`` — unless the request is past
    its deadline (→ EXPIRED) or out of budget (→ LOST). Backoff for
    attempt *k* (1-based) is ``base_backoff_s * multiplier**(k-1)``
    plus uniform jitter on ``[0, jitter_s]`` drawn from an RNG keyed by
    ``(seed, request_id, attempt)`` — order-independent, so the same
    seed reproduces the same chaos timeline bit for bit.
    """

    #: Resubmissions allowed per request beyond the original attempt.
    max_retries: int = 2
    base_backoff_s: float = 1e-3
    backoff_multiplier: float = 2.0
    #: Upper bound of the uniform jitter added to every backoff.
    jitter_s: float = 1e-4
    #: Fleet-wide default deadline (seconds since first arrival) used
    #: for requests that carry no ``deadline_s`` of their own. ``None``
    #: means such requests never expire.
    deadline_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_backoff_s < 0:
            raise ConfigError(
                f"base_backoff_s must be >= 0, got {self.base_backoff_s}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )
        if self.jitter_s < 0:
            raise ConfigError(f"jitter_s must be >= 0, got {self.jitter_s}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    def effective_deadline_s(self, request: Request) -> Optional[float]:
        """The deadline governing one request (its own wins)."""
        return (
            request.deadline_s
            if request.deadline_s is not None
            else self.deadline_s
        )

    def backoff_s(self, request_id: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of one request.

        Keyed RNG, not shared state: two simulations that process
        failures in different internal orders still draw identical
        jitter for the same (request, attempt).
        """
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        rng = random.Random(self.seed * 1000003 + request_id * 101 + attempt)
        backoff = self.base_backoff_s * self.backoff_multiplier ** (attempt - 1)
        return backoff + rng.uniform(0.0, self.jitter_s)


# ---------------------------------------------------------------- shedding
class SheddingPolicy:
    """Protocol for graceful load shedding.

    Two hooks, both deterministic pure functions of the snapshots:

    * :meth:`reject` runs *before* routing — return True to shed the
      arriving request outright (admission control).
    * :meth:`evict` runs *after* routing — return True to evict the
      chosen shard's oldest waiting request to make room (the arriving
      request is newer and keeps its place; the evicted one is SHED).
    """

    name: str = "none"

    def reject(
        self,
        request: Request,
        now_s: float,
        snapshots: Sequence[SchedulerSnapshot],
        deadline_s: Optional[float],
    ) -> bool:
        """Shed ``request`` at admission? ``snapshots`` = feasible shards."""
        return False

    def evict(self, chosen: SchedulerSnapshot) -> bool:
        """Evict the chosen shard's oldest waiting request first?"""
        return False


class NoShedding(SheddingPolicy):
    """Admit everything; the queues absorb whatever chaos brings."""

    name = "none"


class DeadlineShedding(SheddingPolicy):
    """Reject requests no shard can predictably serve by their deadline.

    Uses the same surface-driven, health-aware TTFT model the
    predicted-latency router uses (brownouts inflate it, so a degraded
    fleet sheds earlier): if even the *best* feasible shard's predicted
    TTFT exceeds the request's remaining deadline budget, completing it
    on time is already hopeless and admitting it would only steal KV
    and batch slots from requests that can still make their SLOs.
    Requests without a deadline are always admitted.
    """

    name = "deadline"

    def reject(
        self,
        request: Request,
        now_s: float,
        snapshots: Sequence[SchedulerSnapshot],
        deadline_s: Optional[float],
    ) -> bool:
        if deadline_s is None:
            return False
        remaining = request.arrival_s + deadline_s - now_s
        if remaining <= 0.0:
            return True
        best = min(model_ttft_s(request, now_s, snap) for snap in snapshots)
        return best > remaining


class DropOldestShedding(SheddingPolicy):
    """Bound per-shard backlog by evicting the oldest waiting request.

    When the routed-to shard already queues ``max_waiting`` requests,
    the one that has waited longest is shed — it is the most likely to
    be hopeless anyway, and dropping it shortens the wait for the whole
    queue behind it (the inverse of the work-stealing victim rule,
    applied to overload instead of idleness).
    """

    name = "drop-oldest"

    def __init__(self, max_waiting: int = 8) -> None:
        if max_waiting < 1:
            raise ConfigError(f"max_waiting must be >= 1, got {max_waiting}")
        self.max_waiting = max_waiting

    def evict(self, chosen: SchedulerSnapshot) -> bool:
        return chosen.n_waiting >= self.max_waiting


#: Name -> constructor registry (CLI enumerates this).
SHEDDING_POLICIES: Dict[str, Callable[[], SheddingPolicy]] = {
    NoShedding.name: NoShedding,
    DeadlineShedding.name: DeadlineShedding,
    DropOldestShedding.name: DropOldestShedding,
}

#: Deterministic enumeration order for CLI choices.
SHEDDING_NAMES: Tuple[str, ...] = tuple(sorted(SHEDDING_POLICIES))


def make_shedding(name: str) -> SheddingPolicy:
    """Instantiate a registered shedding policy by name."""
    try:
        return SHEDDING_POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown shedding policy {name!r}; available: "
            f"{', '.join(SHEDDING_NAMES)}"
        ) from None


# ----------------------------------------------------------------- report
@dataclass(frozen=True)
class AppliedFault:
    """One fault as it actually landed on the timeline."""

    kind: FaultKind
    shard_id: int
    at_s: float
    #: Crash: instant the shard is serving again (outage + re-warm).
    #: Brownout: instant nominal bandwidth returns.
    until_s: float
    #: Requests destroyed by a crash (waiting + in-flight); 0 for
    #: brownouts.
    n_requests_hit: int = 0
    #: Decode tokens already generated by in-flight requests the crash
    #: threw away — work that must be redone from scratch on retry.
    lost_generated_tokens: int = 0


@dataclass(frozen=True)
class ResilienceReport:
    """What chaos did to one fleet run, with conservation enforced."""

    #: ``(request_id, Disposition)`` per submitted request, id-ordered.
    dispositions: Tuple[Tuple[int, Disposition], ...]
    n_submitted: int
    n_ok: int
    n_retried: int
    n_shed: int
    n_expired: int
    n_lost: int
    #: Total failure-driven resubmissions across all requests (a
    #: request retried twice counts 2).
    n_retries: int
    #: Decode tokens generated and then destroyed by crashes.
    lost_generated_tokens: int
    #: Every fault that landed, in timeline order.
    faults: Tuple[AppliedFault, ...]
    #: Seconds each shard spent down (crash outage + re-warm), clipped
    #: to the run's makespan.
    shard_downtime_s: Tuple[float, ...]
    #: Fraction of shard-seconds the fleet was serving: ``1 -
    #: downtime / (n_shards * makespan)``.
    availability: float
    #: Requests offered per second of makespan (submissions, including
    #: the ones later shed or lost).
    offered_rps: float
    #: Requests *completed* per second of makespan — the goodput the
    #: availability cost bought.
    goodput_rps: float

    @property
    def n_failed(self) -> int:
        """Requests that never completed (shed + expired + lost)."""
        return self.n_shed + self.n_expired + self.n_lost

    @classmethod
    def build(
        cls,
        dispositions: Dict[int, Disposition],
        n_retries: int,
        lost_generated_tokens: int,
        faults: Sequence[AppliedFault],
        shard_downtime_s: Sequence[float],
        makespan_s: float,
    ) -> "ResilienceReport":
        """Aggregate per-request fates, enforcing exactly-once accounting.

        Raises :class:`SimulationError` when the counts do not conserve
        — a request with no disposition (dropped on the floor) or a
        completion recorded for a request also marked shed/lost would
        both surface here, which is the whole point.
        """
        counts = {d: 0 for d in Disposition}
        for disposition in dispositions.values():
            counts[disposition] += 1
        n_submitted = len(dispositions)
        conserved = sum(counts.values())
        if conserved != n_submitted:
            raise SimulationError(
                f"disposition conservation violated: {n_submitted} "
                f"submitted but {conserved} dispositions recorded"
            )
        n_completed = counts[Disposition.OK] + counts[Disposition.RETRIED]
        if makespan_s > 0:
            clipped = [min(d, makespan_s) for d in shard_downtime_s]
            shard_seconds = len(shard_downtime_s) * makespan_s
            availability = max(0.0, 1.0 - sum(clipped) / shard_seconds)
            offered_rps = n_submitted / makespan_s
            goodput_rps = n_completed / makespan_s
        else:
            clipped = [0.0 for _ in shard_downtime_s]
            availability = 1.0
            offered_rps = 0.0
            goodput_rps = 0.0
        return cls(
            dispositions=tuple(sorted(dispositions.items())),
            n_submitted=n_submitted,
            n_ok=counts[Disposition.OK],
            n_retried=counts[Disposition.RETRIED],
            n_shed=counts[Disposition.SHED],
            n_expired=counts[Disposition.EXPIRED],
            n_lost=counts[Disposition.LOST],
            n_retries=n_retries,
            lost_generated_tokens=lost_generated_tokens,
            faults=tuple(faults),
            shard_downtime_s=tuple(clipped),
            availability=availability,
            offered_rps=offered_rps,
            goodput_rps=goodput_rps,
        )

    def describe(self) -> str:
        """Human-readable chaos summary for CLI / bench output."""
        lines = [
            f"resilience: {self.n_submitted} submitted -> "
            f"{self.n_ok} ok, {self.n_retried} retried-ok, "
            f"{self.n_shed} shed, {self.n_expired} expired, "
            f"{self.n_lost} lost",
            f"availability {self.availability:.4f}, "
            f"offered {self.offered_rps:.2f} req/s, "
            f"goodput {self.goodput_rps:.2f} req/s",
        ]
        if self.n_retries:
            lines.append(
                f"retries: {self.n_retries} resubmissions, "
                f"{self.lost_generated_tokens} generated tokens lost"
            )
        for fault in self.faults:
            lines.append(
                f"fault: {fault.kind.value} shard {fault.shard_id} "
                f"@ {fault.at_s:.3f}s until {fault.until_s:.3f}s "
                f"({fault.n_requests_hit} requests hit)"
            )
        return "\n".join(lines)
