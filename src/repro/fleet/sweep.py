"""SweepDriver: Pareto fronts over fleet size, routing policy and knobs.

PR 2's :class:`~repro.sim.surface.LatencySurface` made one engine
evaluation a dict lookup per repeated operating point; this driver
makes *fleet design* questions cheap the same way. It clones one base
deployment across a bandwidth profile (clones share the packing
planner, so packing statistics are derived once for the whole sweep),
caches one engine per distinct bandwidth (so every grid point reuses
every surface point any earlier grid point simulated), and evaluates a
``(n_engines x policy x max_batch x ctx_bucket x steal)`` grid of
fleet simulations against regenerated seeded scenarios, optionally
filtered to an energy-per-token ceiling before Pareto extraction.

The output is the capacity planner's curve: each grid point carries
aggregate tokens/s and p99 TTFT / TBT, and :meth:`FleetSweepResult
.pareto_front` extracts the non-dominated set (maximize throughput,
minimize both tails). :meth:`FleetSweepResult.to_json` emits a
versioned document the `repro fleet --sweep --json` CLI writes and CI's
smoke job validates.

Grid points are independent, so :meth:`SweepDriver.sweep` can fan them
out across a ``ProcessPoolExecutor`` (``workers=N``). The parent
broadcasts its warm :class:`~repro.sim.surface.LatencySurface` dumps to
each worker once at pool start, workers ship back only the surface
points they newly discover with each result, and the parent merges those
deltas — so later grid points still benefit from earlier points' work,
just like the serial walk. Results are bit-identical to the serial walk
in deterministic grid order: surface values are exact whether warm or
cold, the parent materializes every (seeded) source itself, and results
are collected in submission order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..sim.surface_store import SurfaceStore

from ..core.meadow import MeadowEngine
from ..errors import ConfigError
from ..models import Stage
from ..serving.request import RequestSource
from .routing import POLICY_NAMES, make_policy
from .simulator import FleetReport, FleetSimulator

__all__ = ["SWEEP_SCHEMA_VERSION", "SweepPoint", "FleetSweepResult", "SweepDriver"]

#: Version stamped into sweep JSON documents; bump on schema changes.
#: v2 added the energy axis (``energy_uj`` / ``energy_per_token_uj``).
#: v3 added the work-stealing axis (``steal``) and the optional
#: ``filters`` block (``max_energy_per_token_uj``).
#: v4 added the fault-scenario axis (``faults``): each point names the
#: seeded chaos scenario it ran under (``"none"`` = fault-free).
SWEEP_SCHEMA_VERSION = 4


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated fleet configuration and its headline metrics."""

    n_engines: int
    policy: str
    max_batch: int
    ctx_bucket: int
    bandwidths_gbps: Tuple[float, ...]
    throughput_tok_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    tbt_p50_s: float
    tbt_p99_s: float
    e2e_p99_s: float
    n_requests: int
    total_generated_tokens: int
    duration_s: float
    max_queue_depth: int
    peak_kv_fraction: float
    #: Modeled energy of every iteration the fleet executed, summed from
    #: the shards' surface points — the power-budget axis the paper
    #: targets. Reported (and selectable via :meth:`FleetSweepResult
    #: .best_by`), not a Pareto-front objective.
    energy_uj: float = 0.0
    energy_per_token_uj: float = 0.0
    #: Whether the fleet ran with work stealing enabled (v3 grid axis).
    steal: bool = False
    #: The named fault scenario the point ran under (v4 grid axis);
    #: ``"none"`` means the fault-free legacy path.
    faults: str = "none"

    def key(self) -> Tuple[int, str, int, int, bool, str]:
        """The configuration axes identifying this grid point."""
        return (
            self.n_engines, self.policy, self.max_batch,
            self.ctx_bucket, self.steal, self.faults,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (tuples become lists)."""
        d = asdict(self)
        d["bandwidths_gbps"] = list(self.bandwidths_gbps)
        return d


def _dominates(a: SweepPoint, b: SweepPoint) -> bool:
    """Pareto dominance: no worse on all objectives, better on one.

    Objectives: maximize ``throughput_tok_s``; minimize ``ttft_p99_s``
    and ``tbt_p99_s``. The energy axis (``energy_uj`` /
    ``energy_per_token_uj``) is deliberately *not* an objective — the
    front stays comparable across schema versions; energy-constrained
    planners read it off the points or pick via
    ``best_by("energy_per_token_uj")``.
    """
    no_worse = (
        a.throughput_tok_s >= b.throughput_tok_s
        and a.ttft_p99_s <= b.ttft_p99_s
        and a.tbt_p99_s <= b.tbt_p99_s
    )
    strictly_better = (
        a.throughput_tok_s > b.throughput_tok_s
        or a.ttft_p99_s < b.ttft_p99_s
        or a.tbt_p99_s < b.tbt_p99_s
    )
    return no_worse and strictly_better


@dataclass(frozen=True)
class FleetSweepResult:
    """Every grid point of one sweep, with Pareto extraction."""

    model_name: str
    plan_name: str
    source_name: str
    points: Tuple[SweepPoint, ...]
    #: Energy ceiling (uJ/token) the grid was filtered by before Pareto
    #: extraction; ``None`` when unconstrained.
    max_energy_per_token_uj: Optional[float] = None

    def pareto_front(self) -> Tuple[SweepPoint, ...]:
        """Non-dominated points, ordered by descending throughput.

        A point survives unless some other point is at least as good on
        throughput and both latency tails and strictly better on one;
        ties (identical objectives) all survive, so the front is never
        empty for a non-empty sweep.
        """
        front = [
            p
            for p in self.points
            if not any(_dominates(q, p) for q in self.points)
        ]
        front.sort(
            key=lambda p: (-p.throughput_tok_s, p.ttft_p99_s, p.tbt_p99_s)
        )
        return tuple(front)

    def best_by(self, attribute: str, minimize: bool = True) -> SweepPoint:
        """The grid point extremal in one metric (ties: first in grid order).

        Raises :class:`ConfigError` naming the valid attributes when
        ``attribute`` is not a :class:`SweepPoint` field.
        """
        if not self.points:
            raise ConfigError("sweep produced no points")
        valid = tuple(f.name for f in fields(SweepPoint))
        if attribute not in valid:
            raise ConfigError(
                f"unknown sweep attribute {attribute!r}; valid attributes "
                f"are: {', '.join(valid)}"
            )
        values = [getattr(p, attribute) for p in self.points]
        pick = min(values) if minimize else max(values)
        return self.points[values.index(pick)]

    def to_json(self) -> Dict[str, Any]:
        """Versioned JSON document: grid, objectives and Pareto front."""
        front = self.pareto_front()
        front_keys = {p.key() for p in front}
        points = []
        for p in self.points:
            d = p.to_dict()
            d["pareto"] = p.key() in front_keys
            points.append(d)
        doc = {
            "version": SWEEP_SCHEMA_VERSION,
            "model": self.model_name,
            "plan": self.plan_name,
            "source": self.source_name,
            "objectives": {
                "throughput_tok_s": "max",
                "ttft_p99_s": "min",
                "tbt_p99_s": "min",
            },
            "points": points,
            "pareto_front": [p.to_dict() for p in front],
        }
        if self.max_energy_per_token_uj is not None:
            doc["filters"] = {
                "max_energy_per_token_uj": self.max_energy_per_token_uj
            }
        return doc

    def format_table(self) -> str:
        """Fixed-width text table with Pareto markers."""
        from ..analysis import format_table

        front_keys = {p.key() for p in self.pareto_front()}
        rows = [
            [
                p.n_engines,
                p.policy,
                p.max_batch,
                p.ctx_bucket,
                "on" if p.steal else "",
                p.faults if p.faults != "none" else "",
                f"{p.throughput_tok_s:.1f}",
                f"{p.ttft_p99_s * 1e3:.3f}",
                f"{p.tbt_p99_s * 1e3:.3f}",
                "*" if p.key() in front_keys else "",
            ]
            for p in self.points
        ]
        return format_table(
            [
                "engines",
                "policy",
                "max_batch",
                "ctx_bucket",
                "steal",
                "faults",
                "tok/s",
                "p99 TTFT (ms)",
                "p99 TBT (ms)",
                "Pareto",
            ],
            rows,
        )


class SweepDriver:
    """Evaluate fleet configuration grids from one base deployment.

    Args:
        base_engine: the deployment to fan out. Clones share its
            packing planner (stats are model/packing-scoped), and one
            engine is cached per distinct bandwidth so surfaces warm
            monotonically across the whole sweep.
        bandwidths_gbps: the fleet's per-shard bandwidth profile. A
            fleet of ``k`` engines takes the first ``k`` entries,
            cycling when ``k`` exceeds the profile — so ``[12, 1]``
            at ``k=4`` is two fast and two slow boxes.
        kv_budget_bytes: optional per-shard override, broadcast or
            cycled like the bandwidth profile.
        surface_store: optional :class:`~repro.sim.SurfaceStore`. Each
            engine warm-starts from the store the moment
            :meth:`engine_for` creates it; call :meth:`save_surfaces`
            after a sweep to append what the run discovered. Numbers
            are identical either way — the store only skips
            re-simulating known points.
    """

    def __init__(
        self,
        base_engine: MeadowEngine,
        bandwidths_gbps: Sequence[float],
        kv_budget_bytes: Optional[Sequence[Optional[int]]] = None,
        surface_store: Optional["SurfaceStore"] = None,
    ) -> None:
        if not bandwidths_gbps:
            raise ConfigError("bandwidths_gbps must not be empty")
        self.base_engine = base_engine
        self.bandwidths_gbps = tuple(float(b) for b in bandwidths_gbps)
        self.kv_budget_bytes = (
            tuple(kv_budget_bytes) if kv_budget_bytes is not None else None
        )
        if self.kv_budget_bytes is not None and len(self.kv_budget_bytes) != len(
            self.bandwidths_gbps
        ):
            raise ConfigError(
                "kv_budget_bytes must match bandwidths_gbps in length"
            )
        self.surface_store = surface_store
        self._engines: Dict[float, MeadowEngine] = {}
        self._store_loaded: Dict[float, int] = {}

    def engine_for(self, bandwidth_gbps: float) -> MeadowEngine:
        """The cached clone of the base deployment at one bandwidth."""
        engine = self._engines.get(bandwidth_gbps)
        if engine is None:
            if bandwidth_gbps == self.base_engine.config.dram_bandwidth_gbps:
                engine = self.base_engine
            else:
                engine = self.base_engine.clone(
                    config=self.base_engine.config.with_bandwidth(bandwidth_gbps)
                )
            self._engines[bandwidth_gbps] = engine
            if self.surface_store is not None:
                self._store_loaded[bandwidth_gbps] = self.surface_store.load(
                    engine
                )
        return engine

    def save_surfaces(self) -> Tuple[int, int]:
        """Append every cached engine's surface to the store.

        Returns ``(new_points, warm_points)``: how many exact points
        this driver's runs discovered beyond what the store supplied,
        and how many the store supplied. ``(0, 0)`` without a store.
        A parallel sweep's worker discoveries count too — they were
        merged back into the parent engines with each result.
        """
        if self.surface_store is None:
            return (0, 0)
        new = warm = 0
        for bandwidth, engine in sorted(self._engines.items()):
            loaded = self._store_loaded.get(bandwidth, 0)
            warm += loaded
            new += max(0, len(engine.surface) - loaded)
            self.surface_store.save(engine)
        return new, warm

    def fleet_profile(self, n_engines: int) -> Tuple[float, ...]:
        """Bandwidths of a fleet of ``n_engines`` (profile cycled)."""
        if n_engines < 1:
            raise ConfigError(f"n_engines must be >= 1, got {n_engines}")
        profile = self.bandwidths_gbps
        return tuple(profile[i % len(profile)] for i in range(n_engines))

    def run_point(
        self,
        source: RequestSource,
        n_engines: int,
        policy: str,
        max_batch: int = 16,
        ctx_bucket: int = 1,
        token_events: bool = False,
        steal: bool = False,
        interpolate: bool = False,
        faults: str = "none",
        fault_seed: int = 0,
    ) -> FleetReport:
        """Evaluate one grid point (exposed for benchmarks and tests).

        ``token_events`` defaults *off* here, unlike the interactive
        simulators: a sweep materializes millions of per-token event
        tuples nobody reads, and the grid metrics are provably identical
        without them.

        ``faults`` names a seeded chaos scenario from
        :data:`~repro.fleet.faults.FAULT_SCENARIOS`; ``"none"`` keeps
        the exact fault-free code path.
        """
        profile = self.fleet_profile(n_engines)
        engines = [self.engine_for(b) for b in profile]
        budgets = None
        if self.kv_budget_bytes is not None:
            budgets = [
                self.kv_budget_bytes[i % len(self.kv_budget_bytes)]
                for i in range(n_engines)
            ]
        fleet = FleetSimulator(
            engines,
            policy=make_policy(policy),
            kv_budget_bytes=budgets,
            max_batch=max_batch,
            ctx_bucket=ctx_bucket,
            token_events=token_events,
            steal=steal,
            interpolate=interpolate,
            faults=None if faults == "none" else faults,
            fault_seed=fault_seed,
        )
        return fleet.run(source)

    def evaluate_point(
        self, source: RequestSource, grid_point: "_GridPoint",
        token_events: bool = False,
    ) -> SweepPoint:
        """Evaluate one grid configuration into its :class:`SweepPoint`.

        Pure in the sweep sense: configuration and a fresh source in,
        one frozen result row out; the only driver state touched is the
        append-only surface cache. This is the task the parallel path
        ships to workers.
        """
        gp = grid_point
        report = self.run_point(
            source, gp.n_engines, gp.policy, gp.max_batch,
            gp.ctx_bucket, token_events=token_events, steal=gp.steal,
            faults=gp.faults, fault_seed=gp.fault_seed,
        )
        m = report.metrics
        energy_uj = sum(
            r.total_energy_uj for r in report.result.shard_results
        )
        return SweepPoint(
            n_engines=gp.n_engines,
            policy=gp.policy,
            max_batch=gp.max_batch,
            ctx_bucket=gp.ctx_bucket,
            bandwidths_gbps=self.fleet_profile(gp.n_engines),
            throughput_tok_s=m.throughput_tok_s,
            ttft_p50_s=m.ttft.p50_s,
            ttft_p99_s=m.ttft.p99_s,
            tbt_p50_s=m.tbt.p50_s,
            tbt_p99_s=m.tbt.p99_s,
            e2e_p99_s=m.e2e.p99_s,
            n_requests=m.n_requests,
            total_generated_tokens=m.total_generated_tokens,
            duration_s=m.duration_s,
            max_queue_depth=m.max_queue_depth,
            peak_kv_fraction=m.peak_kv_fraction,
            energy_uj=energy_uj,
            energy_per_token_uj=(
                energy_uj / m.total_generated_tokens
                if m.total_generated_tokens
                else 0.0
            ),
            steal=gp.steal,
            faults=gp.faults,
        )

    @staticmethod
    def grid_points(
        n_engines_grid: Sequence[int],
        policies: Sequence[str],
        max_batch_grid: Sequence[int],
        ctx_bucket_grid: Sequence[int],
        steal_grid: Sequence[bool],
        faults_grid: Sequence[str] = ("none",),
        fault_seed: int = 0,
    ) -> List["_GridPoint"]:
        """The deterministic grid order shared by serial and parallel
        sweeps: engines, then policy, then max_batch, then ctx_bucket,
        then steal, then faults."""
        return [
            _GridPoint(
                n_engines, policy, max_batch, ctx_bucket, steal,
                faults, fault_seed,
            )
            for n_engines in n_engines_grid
            for policy in policies
            for max_batch in max_batch_grid
            for ctx_bucket in ctx_bucket_grid
            for steal in steal_grid
            for faults in faults_grid
        ]

    def _sweep_parallel(
        self,
        grid: Sequence["_GridPoint"],
        sources: Sequence[RequestSource],
        token_events: bool,
        workers: int,
    ) -> List[SweepPoint]:
        """Fan the grid over a process pool; bit-identical to serial.

        The parent pre-materializes every engine the grid can touch and
        broadcasts their surface dumps through the pool initializer, so
        children start as warm as the parent. Each task returns its
        :class:`SweepPoint` plus the surface points that worker
        discovered since it last shipped any; the parent merges the
        deltas so the warm cache survives the sweep exactly as in the
        serial walk. Futures are collected in submission order, so point
        order — and therefore the versioned Pareto JSON — is identical.
        """
        from concurrent.futures import ProcessPoolExecutor

        for gp in grid:
            for bandwidth in set(self.fleet_profile(gp.n_engines)):
                self.engine_for(bandwidth)
        payload = (
            self.base_engine,
            self.bandwidths_gbps,
            self.kv_budget_bytes,
            {
                bandwidth: engine.surface.to_json()
                for bandwidth, engine in self._engines.items()
            },
        )
        points: List[SweepPoint] = []
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_sweep_worker,
            initargs=(payload,),
        ) as pool:
            futures = [
                pool.submit(_run_sweep_task, gp, source, token_events)
                for gp, source in zip(grid, sources)
            ]
            for future in futures:
                point, deltas = future.result()
                points.append(point)
                for bandwidth, entries in deltas.items():
                    self.engine_for(bandwidth).surface.merge_points(entries)
        return points

    def sweep(
        self,
        stream_factory: Callable[[], RequestSource],
        n_engines_grid: Sequence[int] = (1, 2, 4),
        policies: Sequence[str] = POLICY_NAMES,
        max_batch_grid: Sequence[int] = (16,),
        ctx_bucket_grid: Sequence[int] = (1,),
        token_events: bool = False,
        steal_grid: Sequence[bool] = (False,),
        max_energy_per_token_uj: Optional[float] = None,
        workers: Optional[int] = None,
        faults_grid: Sequence[str] = ("none",),
        fault_seed: int = 0,
    ) -> FleetSweepResult:
        """Evaluate the full configuration grid.

        ``stream_factory`` must return a *fresh* source per call
        (closed-loop sources are single-use); seeded factories make the
        whole sweep reproducible. Grid order is deterministic:
        engines, then policy, then max_batch, then ctx_bucket, then
        steal, then faults (``faults_grid`` names seeded chaos
        scenarios; ``"none"`` points take the exact fault-free path).
        Per-token event materialization is off by default (see
        :meth:`run_point`); every reported metric is identical with it
        on, just slower and heavier.

        ``workers`` > 1 fans the grid over that many processes (see
        :meth:`_sweep_parallel`); ``None`` or 1 runs serially in-process.
        Either way the result — including the versioned Pareto JSON — is
        bit-identical, because every surface point is exact regardless
        of cache warmth and sources are materialized by the parent.
        (This is also why the sweep has no ``interpolate`` knob:
        interpolated values depend on which exact points happen to be
        warm, which differs between the serial and parallel walks.)

        ``max_energy_per_token_uj`` drops grid points whose modeled
        ``energy_per_token_uj`` exceeds the ceiling *before* Pareto
        extraction — the front's objectives are unchanged, only its
        candidate set shrinks. Raises :class:`ConfigError` if the
        filter rejects every point.
        """
        grid = self.grid_points(
            n_engines_grid, policies, max_batch_grid, ctx_bucket_grid,
            steal_grid, faults_grid, fault_seed,
        )
        if not grid:
            raise ConfigError("sweep grid is empty")
        # The parent materializes every (seeded) source itself — worker
        # processes never touch the factory, so closures and lambdas
        # need not pickle and the arrival streams are identical to the
        # serial walk's by construction.
        sources = [stream_factory() for _ in grid]
        source_name = sources[0].name
        if workers is not None and workers > 1 and len(grid) > 1:
            points = self._sweep_parallel(grid, sources, token_events, workers)
        else:
            points = [
                self.evaluate_point(source, gp, token_events=token_events)
                for gp, source in zip(grid, sources)
            ]
        if max_energy_per_token_uj is not None:
            kept = [
                p for p in points
                if p.energy_per_token_uj <= max_energy_per_token_uj
            ]
            if not kept:
                raise ConfigError(
                    f"energy filter {max_energy_per_token_uj} uJ/token "
                    f"rejected all {len(points)} sweep points (min is "
                    f"{min(p.energy_per_token_uj for p in points):.3f})"
                )
            points = kept
        return FleetSweepResult(
            model_name=self.base_engine.model.name,
            plan_name=self.base_engine.plan.name,
            source_name=source_name or "unknown",
            points=tuple(points),
            max_energy_per_token_uj=max_energy_per_token_uj,
        )


@dataclass(frozen=True)
class _GridPoint:
    """One configuration of the sweep grid (no results attached)."""

    n_engines: int
    policy: str
    max_batch: int
    ctx_bucket: int
    steal: bool
    faults: str = "none"
    fault_seed: int = 0


# ---------------------------------------------------------------- workers
#
# Module-level state for ProcessPoolExecutor workers: each worker process
# rebuilds one SweepDriver from the parent's broadcast payload at pool
# start, then evaluates grid tasks against it. ``_WORKER_SHIPPED`` tracks
# which surface keys the parent already knows (broadcast + previously
# shipped deltas), so each task result carries only newly discovered
# points.

_WORKER_DRIVER: Optional[SweepDriver] = None
_WORKER_SHIPPED: Dict[float, FrozenSet[Tuple[Stage, int, int]]] = {}


def _init_sweep_worker(
    payload: Tuple[
        MeadowEngine,
        Tuple[float, ...],
        Optional[Tuple[Optional[int], ...]],
        Mapping[float, Mapping[str, Any]],
    ],
) -> None:
    global _WORKER_DRIVER, _WORKER_SHIPPED
    base_engine, bandwidths_gbps, kv_budget_bytes, surface_dumps = payload
    _WORKER_DRIVER = SweepDriver(base_engine, bandwidths_gbps, kv_budget_bytes)
    _WORKER_SHIPPED = {}
    for bandwidth, dump in surface_dumps.items():
        engine = _WORKER_DRIVER.engine_for(bandwidth)
        engine.load_surface(dump)
        _WORKER_SHIPPED[bandwidth] = engine.surface.point_keys()


def _run_sweep_task(
    grid_point: _GridPoint, source: RequestSource, token_events: bool
) -> Tuple[SweepPoint, Dict[float, List[Dict[str, Any]]]]:
    driver = _WORKER_DRIVER
    assert driver is not None, "worker pool initializer did not run"
    point = driver.evaluate_point(source, grid_point, token_events=token_events)
    deltas: Dict[float, List[Dict[str, Any]]] = {}
    for bandwidth, engine in driver._engines.items():
        shipped = _WORKER_SHIPPED.get(bandwidth, frozenset())
        entries = engine.surface.export_points(exclude=shipped)
        if entries:
            deltas[bandwidth] = entries
            _WORKER_SHIPPED[bandwidth] = engine.surface.point_keys()
    return point, deltas
