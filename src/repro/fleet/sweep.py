"""SweepDriver: Pareto fronts over fleet size, routing policy and knobs.

PR 2's :class:`~repro.sim.surface.LatencySurface` made one engine
evaluation a dict lookup per repeated operating point; this driver
makes *fleet design* questions cheap the same way. It clones one base
deployment across a bandwidth profile (clones share the packing
planner, so packing statistics are derived once for the whole sweep),
caches one engine per distinct bandwidth (so every grid point reuses
every surface point any earlier grid point simulated), and evaluates a
``(n_engines x policy x max_batch x ctx_bucket x steal)`` grid of
fleet simulations against regenerated seeded scenarios, optionally
filtered to an energy-per-token ceiling before Pareto extraction.

The output is the capacity planner's curve: each grid point carries
aggregate tokens/s and p99 TTFT / TBT, and :meth:`FleetSweepResult
.pareto_front` extracts the non-dominated set (maximize throughput,
minimize both tails). :meth:`FleetSweepResult.to_json` emits a
versioned document the `repro fleet --sweep --json` CLI writes and CI's
smoke job validates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.meadow import MeadowEngine
from ..errors import ConfigError
from ..serving.request import RequestSource
from .routing import POLICY_NAMES, make_policy
from .simulator import FleetReport, FleetSimulator

__all__ = ["SWEEP_SCHEMA_VERSION", "SweepPoint", "FleetSweepResult", "SweepDriver"]

#: Version stamped into sweep JSON documents; bump on schema changes.
#: v2 added the energy axis (``energy_uj`` / ``energy_per_token_uj``).
#: v3 added the work-stealing axis (``steal``) and the optional
#: ``filters`` block (``max_energy_per_token_uj``).
SWEEP_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated fleet configuration and its headline metrics."""

    n_engines: int
    policy: str
    max_batch: int
    ctx_bucket: int
    bandwidths_gbps: Tuple[float, ...]
    throughput_tok_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    tbt_p50_s: float
    tbt_p99_s: float
    e2e_p99_s: float
    n_requests: int
    total_generated_tokens: int
    duration_s: float
    max_queue_depth: int
    peak_kv_fraction: float
    #: Modeled energy of every iteration the fleet executed, summed from
    #: the shards' surface points — the power-budget axis the paper
    #: targets. Reported (and selectable via :meth:`FleetSweepResult
    #: .best_by`), not a Pareto-front objective.
    energy_uj: float = 0.0
    energy_per_token_uj: float = 0.0
    #: Whether the fleet ran with work stealing enabled (v3 grid axis).
    steal: bool = False

    def key(self) -> Tuple[int, str, int, int, bool]:
        """The configuration axes identifying this grid point."""
        return (
            self.n_engines, self.policy, self.max_batch,
            self.ctx_bucket, self.steal,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (tuples become lists)."""
        d = asdict(self)
        d["bandwidths_gbps"] = list(self.bandwidths_gbps)
        return d


def _dominates(a: SweepPoint, b: SweepPoint) -> bool:
    """Pareto dominance: no worse on all objectives, better on one.

    Objectives: maximize ``throughput_tok_s``; minimize ``ttft_p99_s``
    and ``tbt_p99_s``. The energy axis (``energy_uj`` /
    ``energy_per_token_uj``) is deliberately *not* an objective — the
    front stays comparable across schema versions; energy-constrained
    planners read it off the points or pick via
    ``best_by("energy_per_token_uj")``.
    """
    no_worse = (
        a.throughput_tok_s >= b.throughput_tok_s
        and a.ttft_p99_s <= b.ttft_p99_s
        and a.tbt_p99_s <= b.tbt_p99_s
    )
    strictly_better = (
        a.throughput_tok_s > b.throughput_tok_s
        or a.ttft_p99_s < b.ttft_p99_s
        or a.tbt_p99_s < b.tbt_p99_s
    )
    return no_worse and strictly_better


@dataclass(frozen=True)
class FleetSweepResult:
    """Every grid point of one sweep, with Pareto extraction."""

    model_name: str
    plan_name: str
    source_name: str
    points: Tuple[SweepPoint, ...]
    #: Energy ceiling (uJ/token) the grid was filtered by before Pareto
    #: extraction; ``None`` when unconstrained.
    max_energy_per_token_uj: Optional[float] = None

    def pareto_front(self) -> Tuple[SweepPoint, ...]:
        """Non-dominated points, ordered by descending throughput.

        A point survives unless some other point is at least as good on
        throughput and both latency tails and strictly better on one;
        ties (identical objectives) all survive, so the front is never
        empty for a non-empty sweep.
        """
        front = [
            p
            for p in self.points
            if not any(_dominates(q, p) for q in self.points)
        ]
        front.sort(
            key=lambda p: (-p.throughput_tok_s, p.ttft_p99_s, p.tbt_p99_s)
        )
        return tuple(front)

    def best_by(self, attribute: str, minimize: bool = True) -> SweepPoint:
        """The grid point extremal in one metric (ties: first in grid order)."""
        if not self.points:
            raise ConfigError("sweep produced no points")
        values = [getattr(p, attribute) for p in self.points]
        pick = min(values) if minimize else max(values)
        return self.points[values.index(pick)]

    def to_json(self) -> Dict[str, Any]:
        """Versioned JSON document: grid, objectives and Pareto front."""
        front = self.pareto_front()
        front_keys = {p.key() for p in front}
        points = []
        for p in self.points:
            d = p.to_dict()
            d["pareto"] = p.key() in front_keys
            points.append(d)
        doc = {
            "version": SWEEP_SCHEMA_VERSION,
            "model": self.model_name,
            "plan": self.plan_name,
            "source": self.source_name,
            "objectives": {
                "throughput_tok_s": "max",
                "ttft_p99_s": "min",
                "tbt_p99_s": "min",
            },
            "points": points,
            "pareto_front": [p.to_dict() for p in front],
        }
        if self.max_energy_per_token_uj is not None:
            doc["filters"] = {
                "max_energy_per_token_uj": self.max_energy_per_token_uj
            }
        return doc

    def format_table(self) -> str:
        """Fixed-width text table with Pareto markers."""
        from ..analysis import format_table

        front_keys = {p.key() for p in self.pareto_front()}
        rows = [
            [
                p.n_engines,
                p.policy,
                p.max_batch,
                p.ctx_bucket,
                "on" if p.steal else "",
                f"{p.throughput_tok_s:.1f}",
                f"{p.ttft_p99_s * 1e3:.3f}",
                f"{p.tbt_p99_s * 1e3:.3f}",
                "*" if p.key() in front_keys else "",
            ]
            for p in self.points
        ]
        return format_table(
            [
                "engines",
                "policy",
                "max_batch",
                "ctx_bucket",
                "steal",
                "tok/s",
                "p99 TTFT (ms)",
                "p99 TBT (ms)",
                "Pareto",
            ],
            rows,
        )


class SweepDriver:
    """Evaluate fleet configuration grids from one base deployment.

    Args:
        base_engine: the deployment to fan out. Clones share its
            packing planner (stats are model/packing-scoped), and one
            engine is cached per distinct bandwidth so surfaces warm
            monotonically across the whole sweep.
        bandwidths_gbps: the fleet's per-shard bandwidth profile. A
            fleet of ``k`` engines takes the first ``k`` entries,
            cycling when ``k`` exceeds the profile — so ``[12, 1]``
            at ``k=4`` is two fast and two slow boxes.
        kv_budget_bytes: optional per-shard override, broadcast or
            cycled like the bandwidth profile.
    """

    def __init__(
        self,
        base_engine: MeadowEngine,
        bandwidths_gbps: Sequence[float],
        kv_budget_bytes: Optional[Sequence[Optional[int]]] = None,
    ) -> None:
        if not bandwidths_gbps:
            raise ConfigError("bandwidths_gbps must not be empty")
        self.base_engine = base_engine
        self.bandwidths_gbps = tuple(float(b) for b in bandwidths_gbps)
        self.kv_budget_bytes = (
            tuple(kv_budget_bytes) if kv_budget_bytes is not None else None
        )
        if self.kv_budget_bytes is not None and len(self.kv_budget_bytes) != len(
            self.bandwidths_gbps
        ):
            raise ConfigError(
                "kv_budget_bytes must match bandwidths_gbps in length"
            )
        self._engines: Dict[float, MeadowEngine] = {}

    def engine_for(self, bandwidth_gbps: float) -> MeadowEngine:
        """The cached clone of the base deployment at one bandwidth."""
        engine = self._engines.get(bandwidth_gbps)
        if engine is None:
            if bandwidth_gbps == self.base_engine.config.dram_bandwidth_gbps:
                engine = self.base_engine
            else:
                engine = self.base_engine.clone(
                    config=self.base_engine.config.with_bandwidth(bandwidth_gbps)
                )
            self._engines[bandwidth_gbps] = engine
        return engine

    def fleet_profile(self, n_engines: int) -> Tuple[float, ...]:
        """Bandwidths of a fleet of ``n_engines`` (profile cycled)."""
        if n_engines < 1:
            raise ConfigError(f"n_engines must be >= 1, got {n_engines}")
        profile = self.bandwidths_gbps
        return tuple(profile[i % len(profile)] for i in range(n_engines))

    def run_point(
        self,
        source: RequestSource,
        n_engines: int,
        policy: str,
        max_batch: int = 16,
        ctx_bucket: int = 1,
        token_events: bool = False,
        steal: bool = False,
    ) -> FleetReport:
        """Evaluate one grid point (exposed for benchmarks and tests).

        ``token_events`` defaults *off* here, unlike the interactive
        simulators: a sweep materializes millions of per-token event
        tuples nobody reads, and the grid metrics are provably identical
        without them.
        """
        profile = self.fleet_profile(n_engines)
        engines = [self.engine_for(b) for b in profile]
        budgets = None
        if self.kv_budget_bytes is not None:
            budgets = [
                self.kv_budget_bytes[i % len(self.kv_budget_bytes)]
                for i in range(n_engines)
            ]
        fleet = FleetSimulator(
            engines,
            policy=make_policy(policy),
            kv_budget_bytes=budgets,
            max_batch=max_batch,
            ctx_bucket=ctx_bucket,
            token_events=token_events,
            steal=steal,
        )
        return fleet.run(source)

    def sweep(
        self,
        stream_factory: Callable[[], RequestSource],
        n_engines_grid: Sequence[int] = (1, 2, 4),
        policies: Sequence[str] = POLICY_NAMES,
        max_batch_grid: Sequence[int] = (16,),
        ctx_bucket_grid: Sequence[int] = (1,),
        token_events: bool = False,
        steal_grid: Sequence[bool] = (False,),
        max_energy_per_token_uj: Optional[float] = None,
    ) -> FleetSweepResult:
        """Evaluate the full configuration grid.

        ``stream_factory`` must return a *fresh* source per call
        (closed-loop sources are single-use); seeded factories make the
        whole sweep reproducible. Grid order is deterministic:
        engines, then policy, then max_batch, then ctx_bucket, then
        steal. Per-token event materialization is off by default (see
        :meth:`run_point`); every reported metric is identical with it
        on, just slower and heavier.

        ``max_energy_per_token_uj`` drops grid points whose modeled
        ``energy_per_token_uj`` exceeds the ceiling *before* Pareto
        extraction — the front's objectives are unchanged, only its
        candidate set shrinks. Raises :class:`ConfigError` if the
        filter rejects every point.
        """
        points: List[SweepPoint] = []
        source_name = None
        for n_engines in n_engines_grid:
            for policy in policies:
                for max_batch in max_batch_grid:
                    for ctx_bucket in ctx_bucket_grid:
                        for steal in steal_grid:
                            source = stream_factory()
                            source_name = source.name
                            report = self.run_point(
                                source, n_engines, policy, max_batch,
                                ctx_bucket, token_events=token_events,
                                steal=steal,
                            )
                            m = report.metrics
                            energy_uj = sum(
                                r.total_energy_uj
                                for r in report.result.shard_results
                            )
                            points.append(
                                SweepPoint(
                                    n_engines=n_engines,
                                    policy=policy,
                                    max_batch=max_batch,
                                    ctx_bucket=ctx_bucket,
                                    bandwidths_gbps=self.fleet_profile(n_engines),
                                    throughput_tok_s=m.throughput_tok_s,
                                    ttft_p50_s=m.ttft.p50_s,
                                    ttft_p99_s=m.ttft.p99_s,
                                    tbt_p50_s=m.tbt.p50_s,
                                    tbt_p99_s=m.tbt.p99_s,
                                    e2e_p99_s=m.e2e.p99_s,
                                    n_requests=m.n_requests,
                                    total_generated_tokens=m.total_generated_tokens,
                                    duration_s=m.duration_s,
                                    max_queue_depth=m.max_queue_depth,
                                    peak_kv_fraction=m.peak_kv_fraction,
                                    energy_uj=energy_uj,
                                    energy_per_token_uj=(
                                        energy_uj / m.total_generated_tokens
                                        if m.total_generated_tokens
                                        else 0.0
                                    ),
                                    steal=steal,
                                )
                            )
        if not points:
            raise ConfigError("sweep grid is empty")
        if max_energy_per_token_uj is not None:
            kept = [
                p for p in points
                if p.energy_per_token_uj <= max_energy_per_token_uj
            ]
            if not kept:
                raise ConfigError(
                    f"energy filter {max_energy_per_token_uj} uJ/token "
                    f"rejected all {len(points)} sweep points (min is "
                    f"{min(p.energy_per_token_uj for p in points):.3f})"
                )
            points = kept
        return FleetSweepResult(
            model_name=self.base_engine.model.name,
            plan_name=self.base_engine.plan.name,
            source_name=source_name or "unknown",
            points=tuple(points),
            max_energy_per_token_uj=max_energy_per_token_uj,
        )
