"""FleetSimulator: one request stream over N engine-backed shards.

A fleet is N :class:`~repro.serving.ContinuousBatchingScheduler` shards,
each wrapping its own :class:`~repro.core.MeadowEngine` — possibly
heterogeneous in DRAM bandwidth, KV budget, packing plan or batching
knobs — fed from *one* global request stream through a pluggable
:class:`~repro.fleet.routing.RoutingPolicy`.

The simulation is a two-level discrete-event loop. The fleet level
processes global arrivals in deterministic ``(arrival_s, request_id)``
order; before each routing decision every shard is advanced to the
arrival instant (shards never see the future), snapshotted, and the
policy picks among the shards that could ever hold the request. Shard
level is the unmodified continuous-batching scheduler, driven through
its incremental ``submit``/``advance_until`` API — so per-shard
semantics (KV-constrained FCFS admission, prefill-before-decode,
event-log invariants) are exactly those of single-engine serving, and a
one-shard fleet reproduces `repro serve` exactly: identical request
records and merged metrics, field for field (only ARRIVAL observations
interleave at finer granularity, since the fleet hands requests over at
routing instants).

**Drain is driven by a global next-event calendar.** Between arrivals
the fleet holds its busy shards in a heap keyed by
:meth:`~repro.serving.ContinuousBatchingScheduler.next_event_s` — the
instant each shard's next iteration would start — pops the global
minimum and advances that shard in one coalesced pass up to the
runner-up's key, interrupted the moment a completion injects a global
follow-up. That makes closed-loop drain cost O(fleet events) while
executing the *identical* iteration sequence as the retained
per-iteration reference walk (``calendar=False``: pick the minimal
shard, run exactly one iteration, repeat), which the equivalence tests
compare against bit for bit — records, events, decisions and merged
metrics.

Closed-loop sources compose: a completion anywhere in the fleet hands
its follow-up back to the *global* router (completion hooks are
intercepted per shard), so think-time users are not pinned to the shard
that served their previous turn. Follow-ups that no shard could ever
admit are rejected and counted, mirroring single-engine behaviour.

Two flag-gated layers ride on the calendar. **Work stealing**
(``steal=True``): a shard going idle pulls the youngest still-waiting
request it can hold off the deepest-backlog shard (which must stay
busy afterwards), recorded as a migration decision — the antidote to
pin-once-forever routing stranding backlogs behind a slow box.
**Calibration feedback**: completions of predicted placements report
their realized TTFT to ``policy.observe``, which the
``calibrated-latency`` policy folds into a per-shard bias correcting
later predictions.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.meadow import MeadowEngine
from ..errors import CapacityError, ConfigError
from ..obs.tracer import FleetObserver, ObsBundle
from ..serving.metrics import FleetMetrics
from ..serving.request import Request, RequestSource
from ..serving.scheduler import ContinuousBatchingScheduler, ServingResult
from .faults import FaultKind, FaultSchedule, make_fault_schedule, rewarm_s
from .metrics import merge_results
from .resilience import (
    AppliedFault,
    Disposition,
    ResilienceReport,
    RetryPolicy,
    SheddingPolicy,
    make_shedding,
)
from .routing import RoutingPolicy, make_policy

__all__ = [
    "RoutingDecision",
    "TTFTCalibration",
    "FleetResult",
    "FleetReport",
    "FleetSimulator",
]

#: Memoization sentinel (a cached calibration may legitimately be None).
_UNSET = object()


@dataclass(frozen=True)
class RoutingDecision:
    """One request's placement: who asked, when, and which shard got it.

    A migrated (stolen) request carries one decision per placement: the
    original routing decision plus one with :attr:`migrated_from` set
    per steal. The *last* decision for a request id is its final
    placement — the one its record lives on.
    """

    request_id: int
    arrival_s: float
    shard_id: int
    #: The routing policy's TTFT model for the chosen shard at decision
    #: time; ``None`` for policies that do not predict latency. Compared
    #: against the realized TTFT by :meth:`FleetReport.ttft_calibration`.
    predicted_ttft_s: Optional[float] = None
    #: The shard a work-stealing migration pulled this request from;
    #: ``None`` for ordinary routing decisions.
    migrated_from: Optional[int] = None


@dataclass(frozen=True)
class TTFTCalibration:
    """Predicted-vs-realized TTFT error over one fleet run's decisions.

    Errors are signed ``predicted - realized`` seconds, so a positive
    mean means the router over-estimates (conservative placement) and a
    negative one that it under-estimates — typically decode interleaving
    after admission, which the prediction model deliberately ignores.
    """

    n_predictions: int
    mean_error_s: float
    mean_abs_error_s: float
    max_abs_error_s: float


@dataclass(frozen=True)
class FleetResult:
    """Everything one fleet simulation produced."""

    model_name: str
    policy_name: str
    source_name: str
    shard_results: Tuple[ServingResult, ...]
    decisions: Tuple[RoutingDecision, ...]
    #: Follow-ups no shard could ever admit (rejected at submission).
    n_rejected_followups: int

    @property
    def n_shards(self) -> int:
        """Number of shards in the fleet."""
        return len(self.shard_results)

    @property
    def requests_per_shard(self) -> Tuple[int, ...]:
        """How many requests each shard finally served.

        Counts *final* placements: a migrated request counts only for
        the shard that actually ran it (its last decision), so the
        tuple always sums to the number of distinct requests.
        """
        placement: Dict[int, int] = {}
        for decision in self.decisions:
            placement[decision.request_id] = decision.shard_id
        counts = [0] * self.n_shards
        for shard_id in placement.values():
            counts[shard_id] += 1
        return tuple(counts)

    @property
    def n_migrations(self) -> int:
        """Work-stealing migrations performed during the run."""
        return sum(
            1 for decision in self.decisions
            if decision.migrated_from is not None
        )


@dataclass(frozen=True)
class FleetReport:
    """A fleet result paired with merged and per-shard summaries."""

    result: FleetResult
    metrics: FleetMetrics
    shard_metrics: Tuple[FleetMetrics, ...]
    #: Chaos accounting (dispositions, availability, applied faults).
    #: ``None`` when the run used no resilience machinery at all —
    #: which is also what a run with an explicitly empty
    #: :class:`~repro.fleet.faults.FaultSchedule` reports, so zero-fault
    #: configurations compare equal whichever way they were spelled.
    resilience: Optional[ResilienceReport] = None
    #: Observability bundle (lifecycle trace + metrics registry) when
    #: the run carried a :class:`~repro.obs.FleetObserver`; ``None``
    #: otherwise. Excluded from equality so an observed run's report
    #: still compares ``==`` to the identical unobserved run — the
    #: bit-identity property the obs layer guarantees and the
    #: equivalence tests assert directly on report equality.
    obs: Optional[ObsBundle] = field(default=None, compare=False, repr=False)

    def timeline(self, width: int = 80) -> str:
        """ASCII fleet timeline: one row per shard, faults overlaid.

        Runs that carried an observer render the exact step/fault trace;
        unobserved runs fall back to a coarse reconstruction from
        request records (see :func:`repro.obs.trace_from_report`).
        """
        from ..obs.bridge import trace_from_report
        from ..obs.gantt import render_fleet_timeline

        trace = self.obs.trace if self.obs is not None else trace_from_report(self)
        return render_fleet_timeline(trace, width=width)

    def ttft_calibration(self) -> Optional[TTFTCalibration]:
        """Aggregate predicted-vs-realized TTFT error, or ``None``.

        ``None`` when no decision carried a prediction (non-predictive
        policy) or no predicted request completed. Realized TTFT is read
        from the request records, so rejected follow-ups never enter;
        only each request's *final* decision is paired (a migrated
        request's original prediction describes a placement that never
        ran). The O(records) pass is memoized on this frozen report —
        ``describe()`` and sweep loops hit the cache after the first
        call.
        """
        cached = self.__dict__.get("_ttft_calibration_cache", _UNSET)
        if cached is not _UNSET:
            return cached
        realized: Dict[int, float] = {}
        for shard in self.result.shard_results:
            for rec in shard.records:
                realized[rec.request.request_id] = rec.ttft_s
        final: Dict[int, RoutingDecision] = {}
        for decision in self.result.decisions:
            final[decision.request_id] = decision
        errors = [
            decision.predicted_ttft_s - realized[request_id]
            for request_id, decision in final.items()
            if decision.predicted_ttft_s is not None
            and request_id in realized
        ]
        if not errors:
            value = None
        else:
            value = TTFTCalibration(
                n_predictions=len(errors),
                mean_error_s=sum(errors) / len(errors),
                mean_abs_error_s=sum(abs(e) for e in errors) / len(errors),
                max_abs_error_s=max(abs(e) for e in errors),
            )
        object.__setattr__(self, "_ttft_calibration_cache", value)
        return value

    def describe(self) -> str:
        """Human-readable report: fleet summary plus per-shard load."""
        title = (
            f"fleet of {self.result.n_shards} x {self.result.model_name} "
            f"— policy={self.result.policy_name}, "
            f"{self.result.source_name} scenario"
        )
        lines = [self.metrics.format_report(title)]
        counts = self.result.requests_per_shard
        for shard_id, (shard, m) in enumerate(
            zip(self.result.shard_results, self.shard_metrics)
        ):
            lines.append(
                f"shard {shard_id} [{shard.plan_name}]: "
                f"{counts[shard_id]} served, "
                f"{m.throughput_tok_s:.2f} tok/s, "
                f"p99 TTFT {m.ttft.p99_s * 1e3:.3f} ms, "
                f"peak KV {m.peak_kv_fraction:.1%}"
            )
        if self.result.n_migrations:
            lines.append(
                f"work stealing: {self.result.n_migrations} migrations"
            )
        calibration = self.ttft_calibration()
        if calibration is not None:
            lines.append(
                f"predicted TTFT error: "
                f"mean {calibration.mean_error_s * 1e3:+.3f} ms, "
                f"mean |err| {calibration.mean_abs_error_s * 1e3:.3f} ms, "
                f"max |err| {calibration.max_abs_error_s * 1e3:.3f} ms "
                f"over {calibration.n_predictions} decisions"
            )
        if self.result.n_rejected_followups:
            lines.append(
                f"rejected follow-ups: {self.result.n_rejected_followups}"
            )
        if self.resilience is not None:
            lines.append(self.resilience.describe())
        return "\n".join(lines)


def _per_shard(value, n: int, name: str) -> List:
    """Broadcast a scalar knob to n shards, or validate a sequence."""
    if isinstance(value, (list, tuple)):
        if len(value) != n:
            raise ConfigError(
                f"{name} has {len(value)} entries for a {n}-shard fleet"
            )
        return list(value)
    return [value] * n


class _DrainCalendar:
    """Cached next-event calendar over the fleet's shards.

    Replaces the rebuild-the-whole-heap-on-stale drain loop: each
    shard's current key (``next_event_s()``, or +inf when idle) is
    cached in ``_keys``; state-touching sites mark shards dirty via
    :meth:`invalidate` / :meth:`invalidate_all` and the next
    :meth:`pop` re-keys only the dirty ones, pushing a heap entry only
    when the key actually changed. Superseded heap entries are removed
    lazily — an entry is live iff its value still equals the shard's
    cached key — so no heapify ever runs after construction.

    Invariant: every shard with a finite cached key has at least one
    live heap entry. :meth:`pop` consumes the winner's entry, so the
    caller must call :meth:`reschedule` after advancing that shard
    (it re-pushes unconditionally: an advance may leave the key
    numerically unchanged, e.g. an admission that does not move the
    clock, and the entry still has to come back).
    """

    __slots__ = ("_heap", "_keys", "_dirty", "_shards")

    def __init__(self, shards: Sequence[ContinuousBatchingScheduler]) -> None:
        self._shards = shards
        self._heap: List[Tuple[float, int]] = []
        self._keys = [math.inf] * len(shards)
        self._dirty = set(range(len(shards)))

    def invalidate(self, shard_id: int) -> None:
        """Mark one shard's cached key as suspect (re-keyed on next pop)."""
        self._dirty.add(shard_id)

    def invalidate_all(self) -> None:
        """Mark every shard dirty (arrival syncs advance all of them)."""
        self._dirty.update(range(len(self._shards)))

    def _flush(self) -> None:
        if not self._dirty:
            return
        heap, keys, shards = self._heap, self._keys, self._shards
        for i in sorted(self._dirty):
            shard = shards[i]
            key = math.inf if shard.idle else shard.next_event_s()
            if key != keys[i]:
                keys[i] = key
                if key != math.inf:
                    heapq.heappush(heap, (key, i))
        self._dirty.clear()

    def pop(self) -> Optional[Tuple[float, int, float]]:
        """Next acting shard as ``(key, shard_id, horizon)``, or None.

        ``horizon`` is the runner-up's live key (stale tops are
        discarded first so it is never spuriously early); ``None``
        means every shard is idle. Ties pop the lowest shard id,
        matching the reference walk's stable ``min()``.
        """
        self._flush()
        heap, keys = self._heap, self._keys
        while heap:
            key, i = heapq.heappop(heap)
            if key != keys[i]:
                continue  # superseded entry
            while heap and heap[0][0] != keys[heap[0][1]]:
                heapq.heappop(heap)
            return key, i, heap[0][0] if heap else math.inf
        return None

    def reschedule(self, shard_id: int) -> None:
        """Re-key one shard after the caller advanced it."""
        shard = self._shards[shard_id]
        key = math.inf if shard.idle else shard.next_event_s()
        self._keys[shard_id] = key
        if key != math.inf:
            heapq.heappush(self._heap, (key, shard_id))


class FleetSimulator:
    """Run request scenarios over a fleet of engines with one router.

    Args:
        engines: one deployed :class:`MeadowEngine` per shard. All must
            serve the same model (one stream, one tokenizer); hardware
            configs, plans and planners may differ freely. Engines with
            identical configs may be shared between shards — schedulers
            hold no engine state beyond the (append-only) surface.
        policy: a :class:`RoutingPolicy` instance or registered name.
        kv_budget_bytes / max_batch / ctx_bucket: scalar applied to all
            shards, or one value per shard for heterogeneous fleets.
        coalesce: let every shard advance stable decode runs in one
            event-compressed pass (bit-identical; ``False`` forces the
            per-token reference walk everywhere).
        token_events: materialize per-token DECODE_STEP / FIRST_TOKEN
            events in every shard's log. Flip off for long sweeps —
            records, merged metrics and peak-KV accounting are exact
            either way.
        calendar: drive the drain phase from the global next-event
            calendar (heap of per-shard ``next_event_s`` keys, coalesced
            advances between keys) — O(fleet events). ``False`` retains
            the per-iteration reference walk (globally minimal shard,
            one iteration at a time) the equivalence tests compare
            against; both produce bit-identical timelines.
        interpolate: allow guarded log-linear surface interpolation on
            every shard's latency lookups (approximate within each
            surface's ``interp_rel_err`` bound, falling back to exact
            simulation when the bracket disagrees more). Off by default
            so fleet numbers stay exact.
        steal: let a shard going idle pull the youngest still-waiting
            request it can hold off the deepest-backlog shard (which
            must stay busy afterwards). Each migration is recorded as a
            :class:`RoutingDecision` with ``migrated_from`` set.
        faults: a :class:`~repro.fleet.faults.FaultSchedule`, a named
            scenario (``"crash"`` / ``"cascade"`` / ``"brownout"`` /
            ``"chaos"`` — instantiated at run time against the fleet
            size and the stream's arrival span), or ``None``. With no
            faults, no retry policy and no shedding the run takes the
            exact pre-resilience code path, bit for bit.
        retry: :class:`~repro.fleet.resilience.RetryPolicy` governing
            failure-driven resubmission. Defaults to ``RetryPolicy()``
            whenever faults are scheduled, so chaos runs retry unless
            explicitly told not to (``RetryPolicy(max_retries=0)``).
        shedding: a :class:`~repro.fleet.resilience.SheddingPolicy`
            instance or registered name (``"none"`` / ``"deadline"`` /
            ``"drop-oldest"``).
        fault_seed: seed for named fault scenarios (ignored when a
            concrete schedule is passed).
        obs: a :class:`~repro.obs.FleetObserver` collecting request
            lifecycle spans, fault windows and per-shard metric samples;
            the built bundle lands on :attr:`FleetReport.obs`. ``None``
            (the default) wires no hooks anywhere — runs are then
            bit-identical to a build without the obs layer, a property
            the equivalence tests enforce.
    """

    def __init__(
        self,
        engines: Sequence[MeadowEngine],
        policy: Union[RoutingPolicy, str] = "round-robin",
        kv_budget_bytes=None,
        max_batch=16,
        ctx_bucket=1,
        coalesce: bool = True,
        token_events: bool = True,
        calendar: bool = True,
        steal: bool = False,
        interpolate: bool = False,
        faults: Union[FaultSchedule, str, None] = None,
        retry: Optional[RetryPolicy] = None,
        shedding: Union[SheddingPolicy, str, None] = None,
        fault_seed: int = 0,
        obs: Optional[FleetObserver] = None,
    ) -> None:
        if not engines:
            raise ConfigError("a fleet needs at least one engine")
        model = engines[0].model
        for i, engine in enumerate(engines):
            if engine.model != model:
                raise ConfigError(
                    f"fleet engines must serve one model: shard 0 runs "
                    f"{model.name}, shard {i} runs {engine.model.name}"
                )
        self.engines = tuple(engines)
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        n = len(self.engines)
        self.kv_budget_bytes = _per_shard(kv_budget_bytes, n, "kv_budget_bytes")
        self.max_batch = _per_shard(max_batch, n, "max_batch")
        self.ctx_bucket = _per_shard(ctx_bucket, n, "ctx_bucket")
        self.coalesce = coalesce
        self.token_events = token_events
        self.calendar = calendar
        self.steal = steal
        self.interpolate = interpolate
        self.faults = faults
        self.retry = retry
        self.shedding = (
            make_shedding(shedding) if isinstance(shedding, str) else shedding
        )
        self.fault_seed = fault_seed
        self.obs = obs

    def _resolve_faults(
        self, initial: Sequence[Request]
    ) -> FaultSchedule:
        """Turn the ``faults`` knob into a concrete schedule for one run."""
        if self.faults is None:
            return FaultSchedule.none()
        if isinstance(self.faults, str):
            span = max(req.arrival_s for req in initial)
            return make_fault_schedule(
                self.faults, len(self.engines), span, self.fault_seed
            )
        return self.faults.for_fleet(len(self.engines))

    # ---------------------------------------------------------------- run
    def run(self, source: RequestSource) -> FleetReport:
        """Simulate one scenario across the fleet to completion."""
        initial = tuple(source.initial())
        if not initial:
            raise ConfigError(f"source {source.name!r} produced no requests")
        schedule = self._resolve_faults(initial)
        # The resilience layer engages only when something asked for it;
        # otherwise the run takes the exact pre-resilience code path, so
        # `faults=None` and `faults=FaultSchedule.none()` (and the build
        # without this layer) produce bit-identical reports.
        resilient = (
            not schedule.is_empty
            or self.retry is not None
            or (self.shedding is not None and self.shedding.name != "none")
        )
        if resilient:
            return self._run_resilient(source, initial, schedule)
        policy = self.policy
        policy.reset(len(self.engines))
        obs = self.obs

        # (arrival_s, request_id, Request): the same deterministic FCFS
        # total order the per-shard schedulers use.
        arrivals: List[Tuple[float, int, Request]] = []
        n_rejected = 0
        # Predictions awaiting realization (request id -> predicted
        # TTFT on its current shard). Entries are dropped when a steal
        # migrates the request, so completions only report placements
        # that actually ran.
        pending_predictions: Dict[int, float] = {}
        shards: List[ContinuousBatchingScheduler] = []

        def make_harvest(shard_id: int):
            # Shard completion hook: feed realized TTFT back to the
            # policy, then pull any follow-up back to the global router
            # instead of letting the shard keep it.
            def harvest(request: Request, finish_s: float) -> Optional[Request]:
                nonlocal n_rejected
                predicted = pending_predictions.pop(request.request_id, None)
                if predicted is not None:
                    record = shards[shard_id].record_for(request.request_id)
                    policy.observe(shard_id, predicted, record.ttft_s)
                follow_up = source.on_complete(request, finish_s)
                if follow_up is None:
                    return None
                if any(s.can_ever_admit(follow_up) for s in shards):
                    heapq.heappush(
                        arrivals,
                        (follow_up.arrival_s, follow_up.request_id, follow_up),
                    )
                    if obs is not None:
                        obs.instant(
                            "SUBMIT", follow_up.arrival_s,
                            request_id=follow_up.request_id, follow_up=True,
                        )
                else:
                    n_rejected += 1
                return None

            return harvest

        shards.extend(
            ContinuousBatchingScheduler(
                engine,
                source=None,
                kv_budget_bytes=self.kv_budget_bytes[i],
                max_batch=self.max_batch[i],
                ctx_bucket=self.ctx_bucket[i],
                on_complete=make_harvest(i),
                coalesce=self.coalesce,
                token_events=self.token_events,
                interpolate=self.interpolate,
                obs=obs.shard(i) if obs is not None else None,
            )
            for i, engine in enumerate(self.engines)
        )
        # Open-loop sources never inject follow-ups, so once the arrival
        # heap drains the shards are fully independent and each can run
        # dry in one coalesced advance instead of the boundary-level
        # stepping closed-loop routing fidelity (and steal checks)
        # requires. A source is open-loop only when on_complete is the
        # base-class no-op and no instance-level hook shadows it.
        open_loop = (
            type(source).on_complete is RequestSource.on_complete
            and "on_complete" not in getattr(source, "__dict__", {})
            and not self.steal
        )

        seen_ids = set()
        for req in initial:
            if req.request_id in seen_ids:
                raise ConfigError(
                    f"duplicate request id {req.request_id} in fleet stream"
                )
            seen_ids.add(req.request_id)
            if not any(s.can_ever_admit(req) for s in shards):
                # Mirror the single-engine fail-fast: an initial request
                # that can never run anywhere is a configuration error.
                shards[0]._check(req)  # raises with the precise reason
            heapq.heappush(arrivals, (req.arrival_s, req.request_id, req))
            if obs is not None:
                obs.instant("SUBMIT", req.arrival_s, request_id=req.request_id)

        decisions: List[RoutingDecision] = []

        def steal_pass() -> bool:
            return self._steal_pass(
                shards, decisions, pending_predictions, obs=obs
            )

        # The drain calendar caches each shard's next-event key with
        # explicit invalidation: routing, stealing and arrival syncs
        # mark the shards they touched dirty instead of forcing a full
        # rebuild, and only changed keys re-enter the heap.
        calendar = _DrainCalendar(shards)
        while True:
            if self.steal and steal_pass():
                calendar.invalidate_all()
            if arrivals:
                calendar.invalidate_all()
                t, request_id, req = heapq.heappop(arrivals)
                # No shard may lag the routing instant: advance each to
                # t (steps in flight may overshoot — shards are busy
                # until their clock, which the snapshot exposes). The
                # advance stops the moment a completion injects a
                # follow-up due *before* t: that follow-up must be
                # routed — and submitted to its shard — before any
                # shard simulates past its arrival, or prefills that
                # should preempt in-flight decodes run too late.
                preempted = lambda: bool(arrivals) and arrivals[0][0] < t
                for shard in shards:
                    shard.advance_until(t, interrupt=preempted)
                if preempted():
                    # Route the earlier follow-up first; the popped
                    # arrival goes back and re-advances from here.
                    heapq.heappush(arrivals, (t, request_id, req))
                    continue
                feasible = [
                    shard.snapshot(i)
                    for i, shard in enumerate(shards)
                    if shard.can_ever_admit(req)
                ]
                choice = policy.route(req, t, feasible)
                chosen = next(
                    (snap for snap in feasible if snap.shard_id == choice), None
                )
                if chosen is None:
                    raise ConfigError(
                        f"policy {policy.name!r} routed request "
                        f"{request_id} to infeasible shard {choice}"
                    )
                shards[choice].submit(req)
                predicted = policy.predicted_ttft_s(req, t, chosen)
                if predicted is not None:
                    pending_predictions[request_id] = predicted
                decisions.append(
                    RoutingDecision(request_id, t, choice, predicted)
                )
                if obs is not None:
                    obs.instant(
                        "ROUTE", t, request_id=request_id, shard_id=choice,
                        policy=policy.name, predicted_ttft_s=predicted,
                    )
                    obs.count("requests_routed", shard=choice)
            elif open_loop:
                # Open-loop fast path: no follow-ups can ever appear,
                # so each shard runs dry independently in one coalesced
                # advance.
                busy = [shard for shard in shards if not shard.idle]
                if not busy:
                    break
                for shard in busy:
                    shard.advance_until(math.inf)
            elif self.calendar:
                # Event-calendar drain: pop the globally next-acting
                # shard and advance it in one coalesced pass up to the
                # runner-up's key, bailing out the moment a completion
                # injects a global follow-up — so closed-loop arrivals
                # re-enter routing at exactly the same instant the
                # reference walk would surface them.
                nxt = calendar.pop()
                if nxt is None:
                    break
                key, idx, horizon = nxt
                shard = shards[idx]
                if key >= horizon:
                    # Exact tie with the runner-up: run one iteration,
                    # matching the reference walk's id-ordered pick.
                    shard.advance_one()
                else:
                    shard.advance_until(
                        horizon, interrupt=lambda: bool(arrivals)
                    )
                calendar.reschedule(idx)
            else:
                # Reference drain: step the globally next-acting busy
                # shard one iteration at a time, so a completion's
                # closed-loop follow-up re-enters global routing
                # immediately — not after every shard has already
                # simulated past it. This keeps a one-shard closed-loop
                # fleet identical to single-engine serving and routing
                # snapshots honest. The calendar path above executes
                # the identical iteration sequence in coalesced runs.
                busy = [shard for shard in shards if not shard.idle]
                if not busy:
                    break
                min(busy, key=lambda shard: shard.next_event_s()).advance_one()

        shard_results = tuple(shard.result() for shard in shards)
        result = FleetResult(
            model_name=self.engines[0].model.name,
            policy_name=policy.name,
            source_name=source.name,
            shard_results=shard_results,
            decisions=tuple(decisions),
            n_rejected_followups=n_rejected,
        )
        return FleetReport(
            result=result,
            metrics=merge_results(shard_results),
            shard_metrics=tuple(
                FleetMetrics.from_result(r) for r in shard_results
            ),
            obs=obs.build() if obs is not None else None,
        )

    @staticmethod
    def _steal_pass(
        shards: List[ContinuousBatchingScheduler],
        decisions: List[RoutingDecision],
        pending_predictions: Dict[int, float],
        up: Optional[List[bool]] = None,
        obs: Optional[FleetObserver] = None,
    ) -> bool:
        """Idle thieves pull waiting work off backlogged donors.

        Deterministic: thieves are visited in ascending shard id;
        each scans donors by (deepest stealable backlog, lowest id)
        and takes the *oldest* still-waiting request it could ever
        admit — the one with the worst accumulated wait, whose
        departure also shortens the queue for everything behind it
        — provided the donor stays non-idle after losing it and
        the move is profitable: the idle thief's first-token
        instant (its clock plus its surface's prefill) must beat a
        *lower bound* on the donor's (busy-until plus the donor's
        prefill, ignoring the donor's queue), so work never
        migrates onto a shard slow enough to make the wait look
        good. One steal per thief per pass (the thief is busy
        afterwards). Returns whether anything moved.

        ``up`` (resilient runs only) masks crashed shards: a down
        shard is "idle" because its queue was harvested, not because
        it has capacity — it must neither steal nor donate (it holds
        nothing to donate anyway).
        """

        def helps(thief, donor, candidate):
            first_token_thief = max(
                thief.clock_s, candidate.arrival_s
            ) + thief.engine.surface.prefill(
                candidate.prompt_tokens
            ).latency_s
            donor_lower_bound = max(
                donor.clock_s, candidate.arrival_s
            ) + donor.engine.surface.prefill(
                candidate.prompt_tokens
            ).latency_s
            return first_token_thief < donor_lower_bound

        stole = False
        for thief_id, thief in enumerate(shards):
            if up is not None and not up[thief_id]:
                continue
            if not thief.idle:
                continue
            donors = sorted(
                (d_id for d_id, d in enumerate(shards) if d.n_stealable),
                key=lambda d_id: (-shards[d_id].n_stealable, d_id),
            )
            for donor_id in donors:
                donor = shards[donor_id]
                if donor.snapshot(donor_id).n_in_system < 2:
                    continue  # donor would go idle: nothing gained
                victim = next(
                    (
                        candidate
                        for candidate in donor.steal_candidates()
                        if thief.can_ever_admit(candidate)
                        and helps(thief, donor, candidate)
                    ),
                    None,
                )
                if victim is None:
                    continue
                donor.withdraw(victim.request_id)
                # The original prediction describes a placement
                # that will never run; drop it from calibration.
                pending_predictions.pop(victim.request_id, None)
                thief.submit(victim)
                migrate_s = max(thief.clock_s, victim.arrival_s)
                decisions.append(
                    RoutingDecision(
                        victim.request_id,
                        migrate_s,
                        thief_id,
                        migrated_from=donor_id,
                    )
                )
                if obs is not None:
                    obs.instant(
                        "MIGRATE", migrate_s, request_id=victim.request_id,
                        shard_id=thief_id, from_shard=donor_id,
                    )
                    obs.count("migrations", thief=thief_id, donor=donor_id)
                stole = True
                break
        return stole

    # ---------------------------------------------------------- resilience
    def _run_resilient(
        self,
        source: RequestSource,
        initial: Tuple[Request, ...],
        schedule: FaultSchedule,
    ) -> FleetReport:
        """The chaos twin of :meth:`run`: faults, retries and shedding.

        Same two-level discrete-event structure, with a third event
        stream — the fault heap — merged in at the top of the loop.
        Ties between a fault and an arrival at the same instant resolve
        fault-first, so a request never routes to a shard that dies at
        its own arrival instant, and a parked request waking at a
        recovery instant finds the shard already up. Everything stays
        deterministic: fault times come from the seeded schedule, retry
        jitter from ``(seed, request_id, attempt)``-keyed RNGs, and all
        tie-breaks are total orders — two same-seed chaos runs produce
        ``==`` reports.
        """
        n_shards = len(self.engines)
        policy = self.policy
        policy.reset(n_shards)
        obs = self.obs
        retry_policy = self.retry if self.retry is not None else RetryPolicy()
        shedding = self.shedding if self.shedding is not None else None

        arrivals: List[Tuple[float, int, Request]] = []
        n_rejected = 0
        pending_predictions: Dict[int, float] = {}
        shards: List[ContinuousBatchingScheduler] = []

        # -------------------------------------------- resilience state
        dispositions: Dict[int, Disposition] = {}
        attempts: Dict[int, int] = {}  # failure-driven retries used
        origin: Dict[int, float] = {}  # first arrival per request id
        n_retries = 0
        lost_tokens = 0
        applied: List[AppliedFault] = []
        up = [True] * n_shards
        down_until_s = [0.0] * n_shards
        # Cold-start cost per shard, computed once from the engine's
        # packed weight image (crashes on the same shard re-warm alike).
        rewarm_by_shard = [rewarm_s(engine) for engine in self.engines]

        # The fault event heap: (t, seq, action, shard_id, payload).
        # seq is an insertion counter so equal-time events apply in
        # schedule order (recoveries scheduled before a later crash at
        # the same instant fire first).
        fault_heap: List[Tuple[float, int, str, int, object]] = []
        fault_seq = 0

        def push_fault(t: float, action: str, shard_id: int, payload) -> None:
            nonlocal fault_seq
            heapq.heappush(fault_heap, (t, fault_seq, action, shard_id, payload))
            fault_seq += 1

        for fault in schedule.faults:
            if fault.kind is FaultKind.CRASH:
                push_fault(fault.at_s, "crash", fault.shard_id, fault.duration_s)
            else:
                end_s = fault.at_s + fault.duration_s
                push_fault(
                    fault.at_s,
                    "brownout",
                    fault.shard_id,
                    (fault.bandwidth_factor, end_s),
                )
                push_fault(end_s, "brownout_end", fault.shard_id, None)

        def handle_failure(req: Request, t: float) -> None:
            """Decide one harvested request's fate: retry, expire or lose."""
            nonlocal n_retries
            rid = req.request_id
            eff = retry_policy.effective_deadline_s(req)
            used = attempts.get(rid, 0)
            if used >= retry_policy.max_retries:
                # Budget gone. Blame the deadline when it also passed.
                if eff is not None and t >= origin[rid] + eff:
                    dispositions[rid] = Disposition.EXPIRED
                else:
                    dispositions[rid] = Disposition.LOST
                if obs is not None:
                    obs.instant(dispositions[rid].name, t, request_id=rid)
                    obs.count(f"requests_{dispositions[rid].name.lower()}")
                return
            backoff = retry_policy.backoff_s(rid, used + 1)
            if eff is not None and t + backoff >= origin[rid] + eff:
                # The retry could not even re-enter before the deadline.
                dispositions[rid] = Disposition.EXPIRED
                if obs is not None:
                    obs.instant("EXPIRED", t, request_id=rid)
                    obs.count("requests_expired")
                return
            attempts[rid] = used + 1
            n_retries += 1
            resub = replace(req, arrival_s=t + backoff)
            heapq.heappush(arrivals, (resub.arrival_s, rid, resub))
            if obs is not None:
                obs.instant(
                    "RETRY", t, request_id=rid,
                    attempt=used + 1, backoff_s=backoff,
                )
                obs.count("retries")

        def make_harvest(shard_id: int):
            # Completion hook: record the disposition (exactly once, at
            # the only instant a request can complete), feed calibration,
            # then hand any follow-up back to the global router.
            def harvest(request: Request, finish_s: float) -> Optional[Request]:
                nonlocal n_rejected
                rid = request.request_id
                dispositions[rid] = (
                    Disposition.RETRIED
                    if attempts.get(rid)
                    else Disposition.OK
                )
                predicted = pending_predictions.pop(rid, None)
                if predicted is not None:
                    record = shards[shard_id].record_for(rid)
                    policy.observe(shard_id, predicted, record.ttft_s)
                follow_up = source.on_complete(request, finish_s)
                if follow_up is None:
                    return None
                if any(s.can_ever_admit(follow_up) for s in shards):
                    heapq.heappush(
                        arrivals,
                        (follow_up.arrival_s, follow_up.request_id, follow_up),
                    )
                    if obs is not None:
                        obs.instant(
                            "SUBMIT", follow_up.arrival_s,
                            request_id=follow_up.request_id, follow_up=True,
                        )
                else:
                    n_rejected += 1
                return None

            return harvest

        shards.extend(
            ContinuousBatchingScheduler(
                engine,
                source=None,
                kv_budget_bytes=self.kv_budget_bytes[i],
                max_batch=self.max_batch[i],
                ctx_bucket=self.ctx_bucket[i],
                on_complete=make_harvest(i),
                coalesce=self.coalesce,
                token_events=self.token_events,
                interpolate=self.interpolate,
                obs=obs.shard(i) if obs is not None else None,
            )
            for i, engine in enumerate(self.engines)
        )

        seen_ids = set()
        for req in initial:
            if req.request_id in seen_ids:
                raise ConfigError(
                    f"duplicate request id {req.request_id} in fleet stream"
                )
            seen_ids.add(req.request_id)
            if not any(s.can_ever_admit(req) for s in shards):
                shards[0]._check(req)  # raises with the precise reason
            heapq.heappush(arrivals, (req.arrival_s, req.request_id, req))
            if obs is not None:
                obs.instant("SUBMIT", req.arrival_s, request_id=req.request_id)

        decisions: List[RoutingDecision] = []
        calendar = _DrainCalendar(shards)
        while True:
            if self.steal and self._steal_pass(
                shards, decisions, pending_predictions, up, obs=obs
            ):
                calendar.invalidate_all()
            t_fault = fault_heap[0][0] if fault_heap else math.inf
            t_arr = arrivals[0][0] if arrivals else math.inf
            if t_fault <= t_arr and t_fault < math.inf:
                if t_arr == math.inf and all(shard.idle for shard in shards):
                    # Nothing in flight and nothing to come: remaining
                    # faults would strike an idle fleet past makespan.
                    break
                # Advance every live shard to the fault instant first —
                # bailing out if a completion injects an earlier global
                # follow-up, which must route before time passes it.
                preempted = lambda: bool(arrivals) and arrivals[0][0] < t_fault
                for i, shard in enumerate(shards):
                    if up[i]:
                        shard.advance_until(t_fault, interrupt=preempted)
                if preempted():
                    continue
                t, _, action, s, payload = heapq.heappop(fault_heap)
                calendar.invalidate_all()
                if action == "crash":
                    if not up[s]:
                        continue  # absorbed: the shard is already down
                    waiting, inflight = shards[s].crash_harvest()
                    up[s] = False
                    recover_at = t + payload + rewarm_by_shard[s]
                    down_until_s[s] = recover_at
                    push_fault(recover_at, "recover", s, None)
                    lost = sum(gen for _, gen in inflight)
                    lost_tokens += lost
                    victims = waiting + [req for req, _ in inflight]
                    applied.append(
                        AppliedFault(
                            FaultKind.CRASH, s, t, recover_at,
                            len(victims), lost,
                        )
                    )
                    if obs is not None:
                        obs.span(
                            "CRASH", t, t + payload, shard_id=s,
                            n_requests_hit=len(victims),
                            lost_generated_tokens=lost,
                        )
                        obs.span("REWARM", t + payload, recover_at, shard_id=s)
                        obs.count("crashes", shard=s)
                        obs.gauge("shards_up", t, float(sum(up)))
                    for victim in victims:
                        pending_predictions.pop(victim.request_id, None)
                        handle_failure(victim, t)
                elif action == "recover":
                    up[s] = True
                    if obs is not None:
                        obs.gauge("shards_up", t, float(sum(up)))
                elif action == "brownout":
                    factor, end_s = payload
                    # Steps already in flight finish at their original
                    # bandwidth; everything starting after t runs slow.
                    shards[s].latency_scale = 1.0 / factor
                    applied.append(
                        AppliedFault(FaultKind.BROWNOUT, s, t, end_s)
                    )
                    if obs is not None:
                        obs.span(
                            "BROWNOUT", t, end_s, shard_id=s,
                            bandwidth_factor=factor,
                        )
                        obs.count("brownouts", shard=s)
                else:  # brownout_end — most recent event wins on overlap
                    shards[s].latency_scale = 1.0
                continue
            if arrivals:
                calendar.invalidate_all()
                t, request_id, req = heapq.heappop(arrivals)
                preempted = lambda: bool(arrivals) and arrivals[0][0] < t
                for i, shard in enumerate(shards):
                    if up[i]:
                        shard.advance_until(t, interrupt=preempted)
                if preempted():
                    heapq.heappush(arrivals, (t, request_id, req))
                    continue
                feasible_ids = [
                    i for i, shard in enumerate(shards)
                    if shard.can_ever_admit(req)
                ]
                # Circuit breaker: down shards take no traffic. When
                # *every* feasible shard is down, park the request until
                # the first of them recovers (its arrival_s is kept, so
                # the wait counts against its TTFT honestly).
                live = [i for i in feasible_ids if up[i]]
                if not live:
                    wake = min(down_until_s[i] for i in feasible_ids)
                    heapq.heappush(arrivals, (max(wake, t), request_id, req))
                    continue
                origin.setdefault(request_id, req.arrival_s)
                eff = retry_policy.effective_deadline_s(req)
                if eff is not None and attempts.get(request_id):
                    # A retry's deadline budget counts from its FIRST
                    # arrival, not the resubmission instant.
                    eff = origin[request_id] + eff - req.arrival_s
                feasible = [shards[i].snapshot(i) for i in live]
                if shedding is not None and shedding.reject(
                    req, t, feasible, eff
                ):
                    dispositions[request_id] = Disposition.SHED
                    if obs is not None:
                        obs.instant(
                            "SHED", t, request_id=request_id, reason="rejected"
                        )
                        obs.count("requests_shed", reason="rejected")
                    continue
                choice = policy.route(req, t, feasible)
                chosen = next(
                    (snap for snap in feasible if snap.shard_id == choice),
                    None,
                )
                if chosen is None:
                    raise ConfigError(
                        f"policy {policy.name!r} routed request "
                        f"{request_id} to infeasible shard {choice}"
                    )
                if shedding is not None and shedding.evict(chosen):
                    victims = shards[choice].steal_candidates()
                    if victims:
                        victim = victims[0]
                        shards[choice].withdraw(victim.request_id)
                        pending_predictions.pop(victim.request_id, None)
                        dispositions[victim.request_id] = Disposition.SHED
                        if obs is not None:
                            obs.instant(
                                "SHED", t, request_id=victim.request_id,
                                shard_id=choice, reason="evicted",
                            )
                            obs.count("requests_shed", reason="evicted")
                shards[choice].submit(req)
                predicted = policy.predicted_ttft_s(req, t, chosen)
                if predicted is not None:
                    pending_predictions[request_id] = predicted
                decisions.append(
                    RoutingDecision(request_id, t, choice, predicted)
                )
                if obs is not None:
                    obs.instant(
                        "ROUTE", t, request_id=request_id, shard_id=choice,
                        policy=policy.name, predicted_ttft_s=predicted,
                    )
                    obs.count("requests_routed", shard=choice)
            elif self.calendar:
                # Event-calendar drain, as in run(); down shards are
                # idle (harvested) so they never enter the calendar.
                nxt = calendar.pop()
                if nxt is None:
                    break
                key, idx, horizon = nxt
                shard = shards[idx]
                if key >= horizon:
                    shard.advance_one()
                else:
                    shard.advance_until(
                        horizon, interrupt=lambda: bool(arrivals)
                    )
                calendar.reschedule(idx)
            else:
                busy = [shard for shard in shards if not shard.idle]
                if not busy:
                    break
                min(busy, key=lambda shard: shard.next_event_s()).advance_one()

        shard_results = tuple(shard.result() for shard in shards)
        # Availability accounting in absolute time: the run spans the
        # first arrival to the last shard clock; each crash's down
        # window is clipped to that span.
        start_s = min(req.arrival_s for req in initial)
        end_s = max(shard.clock_s for shard in shards)
        makespan = max(0.0, end_s - start_s)
        downtime = [0.0] * n_shards
        for fault in applied:
            if fault.kind is FaultKind.CRASH:
                lo = min(max(fault.at_s, start_s), end_s)
                hi = min(max(fault.until_s, start_s), end_s)
                downtime[fault.shard_id] += hi - lo
        resilience = ResilienceReport.build(
            dispositions=dispositions,
            n_retries=n_retries,
            lost_generated_tokens=lost_tokens,
            faults=applied,
            shard_downtime_s=downtime,
            makespan_s=makespan,
        )
        result = FleetResult(
            model_name=self.engines[0].model.name,
            policy_name=policy.name,
            source_name=source.name,
            shard_results=shard_results,
            decisions=tuple(decisions),
            n_rejected_followups=n_rejected,
        )
        return FleetReport(
            result=result,
            metrics=merge_results(shard_results),
            shard_metrics=tuple(
                FleetMetrics.from_result(r) for r in shard_results
            ),
            resilience=resilience,
            obs=obs.build() if obs is not None else None,
        )
