"""FleetSimulator: one request stream over N engine-backed shards.

A fleet is N :class:`~repro.serving.ContinuousBatchingScheduler` shards,
each wrapping its own :class:`~repro.core.MeadowEngine` — possibly
heterogeneous in DRAM bandwidth, KV budget, packing plan or batching
knobs — fed from *one* global request stream through a pluggable
:class:`~repro.fleet.routing.RoutingPolicy`.

The simulation is a two-level discrete-event loop. The fleet level
processes global arrivals in deterministic ``(arrival_s, request_id)``
order; before each routing decision every shard is advanced to the
arrival instant (shards never see the future), snapshotted, and the
policy picks among the shards that could ever hold the request. Shard
level is the unmodified continuous-batching scheduler, driven through
its incremental ``submit``/``advance_until`` API — so per-shard
semantics (KV-constrained FCFS admission, prefill-before-decode,
event-log invariants) are exactly those of single-engine serving, and a
one-shard fleet reproduces `repro serve` exactly: identical request
records and merged metrics, field for field (only ARRIVAL observations
interleave at finer granularity, since the fleet hands requests over at
routing instants).

**Drain is driven by a global next-event calendar.** Between arrivals
the fleet holds its busy shards in a heap keyed by
:meth:`~repro.serving.ContinuousBatchingScheduler.next_event_s` — the
instant each shard's next iteration would start — pops the global
minimum and advances that shard in one coalesced pass up to the
runner-up's key, interrupted the moment a completion injects a global
follow-up. That makes closed-loop drain cost O(fleet events) while
executing the *identical* iteration sequence as the retained
per-iteration reference walk (``calendar=False``: pick the minimal
shard, run exactly one iteration, repeat), which the equivalence tests
compare against bit for bit — records, events, decisions and merged
metrics.

Closed-loop sources compose: a completion anywhere in the fleet hands
its follow-up back to the *global* router (completion hooks are
intercepted per shard), so think-time users are not pinned to the shard
that served their previous turn. Follow-ups that no shard could ever
admit are rejected and counted, mirroring single-engine behaviour.

Two flag-gated layers ride on the calendar. **Work stealing**
(``steal=True``): a shard going idle pulls the youngest still-waiting
request it can hold off the deepest-backlog shard (which must stay
busy afterwards), recorded as a migration decision — the antidote to
pin-once-forever routing stranding backlogs behind a slow box.
**Calibration feedback**: completions of predicted placements report
their realized TTFT to ``policy.observe``, which the
``calibrated-latency`` policy folds into a per-shard bias correcting
later predictions.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.meadow import MeadowEngine
from ..errors import CapacityError, ConfigError
from ..serving.metrics import FleetMetrics
from ..serving.request import Request, RequestSource
from ..serving.scheduler import ContinuousBatchingScheduler, ServingResult
from .metrics import merge_results
from .routing import RoutingPolicy, make_policy

__all__ = [
    "RoutingDecision",
    "TTFTCalibration",
    "FleetResult",
    "FleetReport",
    "FleetSimulator",
]

#: Memoization sentinel (a cached calibration may legitimately be None).
_UNSET = object()


@dataclass(frozen=True)
class RoutingDecision:
    """One request's placement: who asked, when, and which shard got it.

    A migrated (stolen) request carries one decision per placement: the
    original routing decision plus one with :attr:`migrated_from` set
    per steal. The *last* decision for a request id is its final
    placement — the one its record lives on.
    """

    request_id: int
    arrival_s: float
    shard_id: int
    #: The routing policy's TTFT model for the chosen shard at decision
    #: time; ``None`` for policies that do not predict latency. Compared
    #: against the realized TTFT by :meth:`FleetReport.ttft_calibration`.
    predicted_ttft_s: Optional[float] = None
    #: The shard a work-stealing migration pulled this request from;
    #: ``None`` for ordinary routing decisions.
    migrated_from: Optional[int] = None


@dataclass(frozen=True)
class TTFTCalibration:
    """Predicted-vs-realized TTFT error over one fleet run's decisions.

    Errors are signed ``predicted - realized`` seconds, so a positive
    mean means the router over-estimates (conservative placement) and a
    negative one that it under-estimates — typically decode interleaving
    after admission, which the prediction model deliberately ignores.
    """

    n_predictions: int
    mean_error_s: float
    mean_abs_error_s: float
    max_abs_error_s: float


@dataclass(frozen=True)
class FleetResult:
    """Everything one fleet simulation produced."""

    model_name: str
    policy_name: str
    source_name: str
    shard_results: Tuple[ServingResult, ...]
    decisions: Tuple[RoutingDecision, ...]
    #: Follow-ups no shard could ever admit (rejected at submission).
    n_rejected_followups: int

    @property
    def n_shards(self) -> int:
        """Number of shards in the fleet."""
        return len(self.shard_results)

    @property
    def requests_per_shard(self) -> Tuple[int, ...]:
        """How many requests each shard finally served.

        Counts *final* placements: a migrated request counts only for
        the shard that actually ran it (its last decision), so the
        tuple always sums to the number of distinct requests.
        """
        placement: Dict[int, int] = {}
        for decision in self.decisions:
            placement[decision.request_id] = decision.shard_id
        counts = [0] * self.n_shards
        for shard_id in placement.values():
            counts[shard_id] += 1
        return tuple(counts)

    @property
    def n_migrations(self) -> int:
        """Work-stealing migrations performed during the run."""
        return sum(
            1 for decision in self.decisions
            if decision.migrated_from is not None
        )


@dataclass(frozen=True)
class FleetReport:
    """A fleet result paired with merged and per-shard summaries."""

    result: FleetResult
    metrics: FleetMetrics
    shard_metrics: Tuple[FleetMetrics, ...]

    def ttft_calibration(self) -> Optional[TTFTCalibration]:
        """Aggregate predicted-vs-realized TTFT error, or ``None``.

        ``None`` when no decision carried a prediction (non-predictive
        policy) or no predicted request completed. Realized TTFT is read
        from the request records, so rejected follow-ups never enter;
        only each request's *final* decision is paired (a migrated
        request's original prediction describes a placement that never
        ran). The O(records) pass is memoized on this frozen report —
        ``describe()`` and sweep loops hit the cache after the first
        call.
        """
        cached = self.__dict__.get("_ttft_calibration_cache", _UNSET)
        if cached is not _UNSET:
            return cached
        realized: Dict[int, float] = {}
        for shard in self.result.shard_results:
            for rec in shard.records:
                realized[rec.request.request_id] = rec.ttft_s
        final: Dict[int, RoutingDecision] = {}
        for decision in self.result.decisions:
            final[decision.request_id] = decision
        errors = [
            decision.predicted_ttft_s - realized[request_id]
            for request_id, decision in final.items()
            if decision.predicted_ttft_s is not None
            and request_id in realized
        ]
        if not errors:
            value = None
        else:
            value = TTFTCalibration(
                n_predictions=len(errors),
                mean_error_s=sum(errors) / len(errors),
                mean_abs_error_s=sum(abs(e) for e in errors) / len(errors),
                max_abs_error_s=max(abs(e) for e in errors),
            )
        object.__setattr__(self, "_ttft_calibration_cache", value)
        return value

    def describe(self) -> str:
        """Human-readable report: fleet summary plus per-shard load."""
        title = (
            f"fleet of {self.result.n_shards} x {self.result.model_name} "
            f"— policy={self.result.policy_name}, "
            f"{self.result.source_name} scenario"
        )
        lines = [self.metrics.format_report(title)]
        counts = self.result.requests_per_shard
        for shard_id, (shard, m) in enumerate(
            zip(self.result.shard_results, self.shard_metrics)
        ):
            lines.append(
                f"shard {shard_id} [{shard.plan_name}]: "
                f"{counts[shard_id]} served, "
                f"{m.throughput_tok_s:.2f} tok/s, "
                f"p99 TTFT {m.ttft.p99_s * 1e3:.3f} ms, "
                f"peak KV {m.peak_kv_fraction:.1%}"
            )
        if self.result.n_migrations:
            lines.append(
                f"work stealing: {self.result.n_migrations} migrations"
            )
        calibration = self.ttft_calibration()
        if calibration is not None:
            lines.append(
                f"predicted TTFT error: "
                f"mean {calibration.mean_error_s * 1e3:+.3f} ms, "
                f"mean |err| {calibration.mean_abs_error_s * 1e3:.3f} ms, "
                f"max |err| {calibration.max_abs_error_s * 1e3:.3f} ms "
                f"over {calibration.n_predictions} decisions"
            )
        if self.result.n_rejected_followups:
            lines.append(
                f"rejected follow-ups: {self.result.n_rejected_followups}"
            )
        return "\n".join(lines)


def _per_shard(value, n: int, name: str) -> List:
    """Broadcast a scalar knob to n shards, or validate a sequence."""
    if isinstance(value, (list, tuple)):
        if len(value) != n:
            raise ConfigError(
                f"{name} has {len(value)} entries for a {n}-shard fleet"
            )
        return list(value)
    return [value] * n


class FleetSimulator:
    """Run request scenarios over a fleet of engines with one router.

    Args:
        engines: one deployed :class:`MeadowEngine` per shard. All must
            serve the same model (one stream, one tokenizer); hardware
            configs, plans and planners may differ freely. Engines with
            identical configs may be shared between shards — schedulers
            hold no engine state beyond the (append-only) surface.
        policy: a :class:`RoutingPolicy` instance or registered name.
        kv_budget_bytes / max_batch / ctx_bucket: scalar applied to all
            shards, or one value per shard for heterogeneous fleets.
        coalesce: let every shard advance stable decode runs in one
            event-compressed pass (bit-identical; ``False`` forces the
            per-token reference walk everywhere).
        token_events: materialize per-token DECODE_STEP / FIRST_TOKEN
            events in every shard's log. Flip off for long sweeps —
            records, merged metrics and peak-KV accounting are exact
            either way.
        calendar: drive the drain phase from the global next-event
            calendar (heap of per-shard ``next_event_s`` keys, coalesced
            advances between keys) — O(fleet events). ``False`` retains
            the per-iteration reference walk (globally minimal shard,
            one iteration at a time) the equivalence tests compare
            against; both produce bit-identical timelines.
        interpolate: allow guarded log-linear surface interpolation on
            every shard's latency lookups (approximate within each
            surface's ``interp_rel_err`` bound, falling back to exact
            simulation when the bracket disagrees more). Off by default
            so fleet numbers stay exact.
        steal: let a shard going idle pull the youngest still-waiting
            request it can hold off the deepest-backlog shard (which
            must stay busy afterwards). Each migration is recorded as a
            :class:`RoutingDecision` with ``migrated_from`` set.
    """

    def __init__(
        self,
        engines: Sequence[MeadowEngine],
        policy: Union[RoutingPolicy, str] = "round-robin",
        kv_budget_bytes=None,
        max_batch=16,
        ctx_bucket=1,
        coalesce: bool = True,
        token_events: bool = True,
        calendar: bool = True,
        steal: bool = False,
        interpolate: bool = False,
    ) -> None:
        if not engines:
            raise ConfigError("a fleet needs at least one engine")
        model = engines[0].model
        for i, engine in enumerate(engines):
            if engine.model != model:
                raise ConfigError(
                    f"fleet engines must serve one model: shard 0 runs "
                    f"{model.name}, shard {i} runs {engine.model.name}"
                )
        self.engines = tuple(engines)
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        n = len(self.engines)
        self.kv_budget_bytes = _per_shard(kv_budget_bytes, n, "kv_budget_bytes")
        self.max_batch = _per_shard(max_batch, n, "max_batch")
        self.ctx_bucket = _per_shard(ctx_bucket, n, "ctx_bucket")
        self.coalesce = coalesce
        self.token_events = token_events
        self.calendar = calendar
        self.steal = steal
        self.interpolate = interpolate

    # ---------------------------------------------------------------- run
    def run(self, source: RequestSource) -> FleetReport:
        """Simulate one scenario across the fleet to completion."""
        policy = self.policy
        policy.reset(len(self.engines))

        # (arrival_s, request_id, Request): the same deterministic FCFS
        # total order the per-shard schedulers use.
        arrivals: List[Tuple[float, int, Request]] = []
        n_rejected = 0
        # Predictions awaiting realization (request id -> predicted
        # TTFT on its current shard). Entries are dropped when a steal
        # migrates the request, so completions only report placements
        # that actually ran.
        pending_predictions: Dict[int, float] = {}
        shards: List[ContinuousBatchingScheduler] = []

        def make_harvest(shard_id: int):
            # Shard completion hook: feed realized TTFT back to the
            # policy, then pull any follow-up back to the global router
            # instead of letting the shard keep it.
            def harvest(request: Request, finish_s: float) -> Optional[Request]:
                nonlocal n_rejected
                predicted = pending_predictions.pop(request.request_id, None)
                if predicted is not None:
                    record = shards[shard_id].record_for(request.request_id)
                    policy.observe(shard_id, predicted, record.ttft_s)
                follow_up = source.on_complete(request, finish_s)
                if follow_up is None:
                    return None
                if any(s.can_ever_admit(follow_up) for s in shards):
                    heapq.heappush(
                        arrivals,
                        (follow_up.arrival_s, follow_up.request_id, follow_up),
                    )
                else:
                    n_rejected += 1
                return None

            return harvest

        shards.extend(
            ContinuousBatchingScheduler(
                engine,
                source=None,
                kv_budget_bytes=self.kv_budget_bytes[i],
                max_batch=self.max_batch[i],
                ctx_bucket=self.ctx_bucket[i],
                on_complete=make_harvest(i),
                coalesce=self.coalesce,
                token_events=self.token_events,
                interpolate=self.interpolate,
            )
            for i, engine in enumerate(self.engines)
        )
        # Open-loop sources never inject follow-ups, so once the arrival
        # heap drains the shards are fully independent and each can run
        # dry in one coalesced advance instead of the boundary-level
        # stepping closed-loop routing fidelity (and steal checks)
        # requires. A source is open-loop only when on_complete is the
        # base-class no-op and no instance-level hook shadows it.
        open_loop = (
            type(source).on_complete is RequestSource.on_complete
            and "on_complete" not in getattr(source, "__dict__", {})
            and not self.steal
        )

        seen_ids = set()
        for req in source.initial():
            if req.request_id in seen_ids:
                raise ConfigError(
                    f"duplicate request id {req.request_id} in fleet stream"
                )
            seen_ids.add(req.request_id)
            if not any(s.can_ever_admit(req) for s in shards):
                # Mirror the single-engine fail-fast: an initial request
                # that can never run anywhere is a configuration error.
                shards[0]._check(req)  # raises with the precise reason
            heapq.heappush(arrivals, (req.arrival_s, req.request_id, req))
        if not arrivals:
            raise ConfigError(f"source {source.name!r} produced no requests")

        decisions: List[RoutingDecision] = []

        def steal_pass() -> bool:
            """Idle thieves pull waiting work off backlogged donors.

            Deterministic: thieves are visited in ascending shard id;
            each scans donors by (deepest stealable backlog, lowest id)
            and takes the *oldest* still-waiting request it could ever
            admit — the one with the worst accumulated wait, whose
            departure also shortens the queue for everything behind it
            — provided the donor stays non-idle after losing it and
            the move is profitable: the idle thief's first-token
            instant (its clock plus its surface's prefill) must beat a
            *lower bound* on the donor's (busy-until plus the donor's
            prefill, ignoring the donor's queue), so work never
            migrates onto a shard slow enough to make the wait look
            good. One steal per thief per pass (the thief is busy
            afterwards). Returns whether anything moved.
            """

            def helps(thief, donor, candidate):
                first_token_thief = max(
                    thief.clock_s, candidate.arrival_s
                ) + thief.engine.surface.prefill(
                    candidate.prompt_tokens
                ).latency_s
                donor_lower_bound = max(
                    donor.clock_s, candidate.arrival_s
                ) + donor.engine.surface.prefill(
                    candidate.prompt_tokens
                ).latency_s
                return first_token_thief < donor_lower_bound

            stole = False
            for thief_id, thief in enumerate(shards):
                if not thief.idle:
                    continue
                donors = sorted(
                    (d_id for d_id, d in enumerate(shards) if d.n_stealable),
                    key=lambda d_id: (-shards[d_id].n_stealable, d_id),
                )
                for donor_id in donors:
                    donor = shards[donor_id]
                    if donor.snapshot(donor_id).n_in_system < 2:
                        continue  # donor would go idle: nothing gained
                    victim = next(
                        (
                            candidate
                            for candidate in donor.steal_candidates()
                            if thief.can_ever_admit(candidate)
                            and helps(thief, donor, candidate)
                        ),
                        None,
                    )
                    if victim is None:
                        continue
                    donor.withdraw(victim.request_id)
                    # The original prediction describes a placement
                    # that will never run; drop it from calibration.
                    pending_predictions.pop(victim.request_id, None)
                    thief.submit(victim)
                    decisions.append(
                        RoutingDecision(
                            victim.request_id,
                            max(thief.clock_s, victim.arrival_s),
                            thief_id,
                            migrated_from=donor_id,
                        )
                    )
                    stole = True
                    break
            return stole

        # The drain calendar: (next_event_s, shard_id) per busy shard.
        # Rebuilt lazily whenever routing, stealing or an arrival sync
        # touched shard state; between rebuilds only the shard just
        # advanced needs re-keying.
        calendar: List[Tuple[float, int]] = []
        calendar_stale = True
        while True:
            if self.steal and steal_pass():
                calendar_stale = True
            if arrivals:
                calendar_stale = True
                t, request_id, req = heapq.heappop(arrivals)
                # No shard may lag the routing instant: advance each to
                # t (steps in flight may overshoot — shards are busy
                # until their clock, which the snapshot exposes). The
                # advance stops the moment a completion injects a
                # follow-up due *before* t: that follow-up must be
                # routed — and submitted to its shard — before any
                # shard simulates past its arrival, or prefills that
                # should preempt in-flight decodes run too late.
                preempted = lambda: bool(arrivals) and arrivals[0][0] < t
                for shard in shards:
                    shard.advance_until(t, interrupt=preempted)
                if preempted():
                    # Route the earlier follow-up first; the popped
                    # arrival goes back and re-advances from here.
                    heapq.heappush(arrivals, (t, request_id, req))
                    continue
                feasible = [
                    shard.snapshot(i)
                    for i, shard in enumerate(shards)
                    if shard.can_ever_admit(req)
                ]
                choice = policy.route(req, t, feasible)
                chosen = next(
                    (snap for snap in feasible if snap.shard_id == choice), None
                )
                if chosen is None:
                    raise ConfigError(
                        f"policy {policy.name!r} routed request "
                        f"{request_id} to infeasible shard {choice}"
                    )
                shards[choice].submit(req)
                predicted = policy.predicted_ttft_s(req, t, chosen)
                if predicted is not None:
                    pending_predictions[request_id] = predicted
                decisions.append(
                    RoutingDecision(request_id, t, choice, predicted)
                )
            elif open_loop:
                # Open-loop fast path: no follow-ups can ever appear,
                # so each shard runs dry independently in one coalesced
                # advance.
                busy = [shard for shard in shards if not shard.idle]
                if not busy:
                    break
                for shard in busy:
                    shard.advance_until(math.inf)
            elif self.calendar:
                # Event-calendar drain: pop the globally next-acting
                # shard and advance it in one coalesced pass up to the
                # runner-up's key, bailing out the moment a completion
                # injects a global follow-up — so closed-loop arrivals
                # re-enter routing at exactly the same instant the
                # reference walk would surface them.
                if calendar_stale:
                    calendar = [
                        (shard.next_event_s(), i)
                        for i, shard in enumerate(shards)
                        if not shard.idle
                    ]
                    heapq.heapify(calendar)
                    calendar_stale = False
                if not calendar:
                    break
                key, idx = heapq.heappop(calendar)
                shard = shards[idx]
                horizon = calendar[0][0] if calendar else math.inf
                if key >= horizon:
                    # Exact tie with the runner-up: run one iteration,
                    # matching the reference walk's id-ordered pick.
                    shard.advance_one()
                else:
                    shard.advance_until(
                        horizon, interrupt=lambda: bool(arrivals)
                    )
                if not shard.idle:
                    heapq.heappush(calendar, (shard.next_event_s(), idx))
            else:
                # Reference drain: step the globally next-acting busy
                # shard one iteration at a time, so a completion's
                # closed-loop follow-up re-enters global routing
                # immediately — not after every shard has already
                # simulated past it. This keeps a one-shard closed-loop
                # fleet identical to single-engine serving and routing
                # snapshots honest. The calendar path above executes
                # the identical iteration sequence in coalesced runs.
                busy = [shard for shard in shards if not shard.idle]
                if not busy:
                    break
                min(busy, key=lambda shard: shard.next_event_s()).advance_one()

        shard_results = tuple(shard.result() for shard in shards)
        result = FleetResult(
            model_name=self.engines[0].model.name,
            policy_name=policy.name,
            source_name=source.name,
            shard_results=shard_results,
            decisions=tuple(decisions),
            n_rejected_followups=n_rejected,
        )
        return FleetReport(
            result=result,
            metrics=merge_results(shard_results),
            shard_metrics=tuple(
                FleetMetrics.from_result(r) for r in shard_results
            ),
        )
