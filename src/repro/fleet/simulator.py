"""FleetSimulator: one request stream over N engine-backed shards.

A fleet is N :class:`~repro.serving.ContinuousBatchingScheduler` shards,
each wrapping its own :class:`~repro.core.MeadowEngine` — possibly
heterogeneous in DRAM bandwidth, KV budget, packing plan or batching
knobs — fed from *one* global request stream through a pluggable
:class:`~repro.fleet.routing.RoutingPolicy`.

The simulation is a two-level discrete-event loop. The fleet level
processes global arrivals in deterministic ``(arrival_s, request_id)``
order; before each routing decision every shard is advanced to the
arrival instant (shards never see the future), snapshotted, and the
policy picks among the shards that could ever hold the request. Shard
level is the unmodified continuous-batching scheduler, driven through
its incremental ``submit``/``advance_until`` API — so per-shard
semantics (KV-constrained FCFS admission, prefill-before-decode,
event-log invariants) are exactly those of single-engine serving, and a
one-shard fleet reproduces `repro serve` exactly: identical request
records and merged metrics, field for field (only ARRIVAL observations
interleave at finer granularity, since the fleet hands requests over at
routing instants).

Closed-loop sources compose: a completion anywhere in the fleet hands
its follow-up back to the *global* router (completion hooks are
intercepted per shard), so think-time users are not pinned to the shard
that served their previous turn. Follow-ups that no shard could ever
admit are rejected and counted, mirroring single-engine behaviour.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.meadow import MeadowEngine
from ..errors import CapacityError, ConfigError
from ..serving.metrics import FleetMetrics
from ..serving.request import Request, RequestSource
from ..serving.scheduler import ContinuousBatchingScheduler, ServingResult
from .metrics import merge_results
from .routing import RoutingPolicy, make_policy

__all__ = [
    "RoutingDecision",
    "TTFTCalibration",
    "FleetResult",
    "FleetReport",
    "FleetSimulator",
]


@dataclass(frozen=True)
class RoutingDecision:
    """One request's placement: who asked, when, and which shard got it."""

    request_id: int
    arrival_s: float
    shard_id: int
    #: The routing policy's TTFT model for the chosen shard at decision
    #: time; ``None`` for policies that do not predict latency. Compared
    #: against the realized TTFT by :meth:`FleetReport.ttft_calibration`.
    predicted_ttft_s: Optional[float] = None


@dataclass(frozen=True)
class TTFTCalibration:
    """Predicted-vs-realized TTFT error over one fleet run's decisions.

    Errors are signed ``predicted - realized`` seconds, so a positive
    mean means the router over-estimates (conservative placement) and a
    negative one that it under-estimates — typically decode interleaving
    after admission, which the prediction model deliberately ignores.
    """

    n_predictions: int
    mean_error_s: float
    mean_abs_error_s: float
    max_abs_error_s: float


@dataclass(frozen=True)
class FleetResult:
    """Everything one fleet simulation produced."""

    model_name: str
    policy_name: str
    source_name: str
    shard_results: Tuple[ServingResult, ...]
    decisions: Tuple[RoutingDecision, ...]
    #: Follow-ups no shard could ever admit (rejected at submission).
    n_rejected_followups: int

    @property
    def n_shards(self) -> int:
        """Number of shards in the fleet."""
        return len(self.shard_results)

    @property
    def requests_per_shard(self) -> Tuple[int, ...]:
        """How many requests each shard was routed (decision counts)."""
        counts = [0] * self.n_shards
        for decision in self.decisions:
            counts[decision.shard_id] += 1
        return tuple(counts)


@dataclass(frozen=True)
class FleetReport:
    """A fleet result paired with merged and per-shard summaries."""

    result: FleetResult
    metrics: FleetMetrics
    shard_metrics: Tuple[FleetMetrics, ...]

    def ttft_calibration(self) -> Optional[TTFTCalibration]:
        """Aggregate predicted-vs-realized TTFT error, or ``None``.

        ``None`` when no decision carried a prediction (non-predictive
        policy) or no predicted request completed. Realized TTFT is read
        from the request records, so rejected follow-ups never enter.
        """
        realized: Dict[int, float] = {}
        for shard in self.result.shard_results:
            for rec in shard.records:
                realized[rec.request.request_id] = rec.ttft_s
        errors = [
            decision.predicted_ttft_s - realized[decision.request_id]
            for decision in self.result.decisions
            if decision.predicted_ttft_s is not None
            and decision.request_id in realized
        ]
        if not errors:
            return None
        return TTFTCalibration(
            n_predictions=len(errors),
            mean_error_s=sum(errors) / len(errors),
            mean_abs_error_s=sum(abs(e) for e in errors) / len(errors),
            max_abs_error_s=max(abs(e) for e in errors),
        )

    def describe(self) -> str:
        """Human-readable report: fleet summary plus per-shard load."""
        title = (
            f"fleet of {self.result.n_shards} x {self.result.model_name} "
            f"— policy={self.result.policy_name}, "
            f"{self.result.source_name} scenario"
        )
        lines = [self.metrics.format_report(title)]
        counts = self.result.requests_per_shard
        for shard_id, (shard, m) in enumerate(
            zip(self.result.shard_results, self.shard_metrics)
        ):
            lines.append(
                f"shard {shard_id} [{shard.plan_name}]: "
                f"{counts[shard_id]} routed, "
                f"{m.throughput_tok_s:.2f} tok/s, "
                f"p99 TTFT {m.ttft.p99_s * 1e3:.3f} ms, "
                f"peak KV {m.peak_kv_fraction:.1%}"
            )
        calibration = self.ttft_calibration()
        if calibration is not None:
            lines.append(
                f"predicted TTFT error: "
                f"mean {calibration.mean_error_s * 1e3:+.3f} ms, "
                f"mean |err| {calibration.mean_abs_error_s * 1e3:.3f} ms, "
                f"max |err| {calibration.max_abs_error_s * 1e3:.3f} ms "
                f"over {calibration.n_predictions} decisions"
            )
        if self.result.n_rejected_followups:
            lines.append(
                f"rejected follow-ups: {self.result.n_rejected_followups}"
            )
        return "\n".join(lines)


def _per_shard(value, n: int, name: str) -> List:
    """Broadcast a scalar knob to n shards, or validate a sequence."""
    if isinstance(value, (list, tuple)):
        if len(value) != n:
            raise ConfigError(
                f"{name} has {len(value)} entries for a {n}-shard fleet"
            )
        return list(value)
    return [value] * n


class FleetSimulator:
    """Run request scenarios over a fleet of engines with one router.

    Args:
        engines: one deployed :class:`MeadowEngine` per shard. All must
            serve the same model (one stream, one tokenizer); hardware
            configs, plans and planners may differ freely. Engines with
            identical configs may be shared between shards — schedulers
            hold no engine state beyond the (append-only) surface.
        policy: a :class:`RoutingPolicy` instance or registered name.
        kv_budget_bytes / max_batch / ctx_bucket: scalar applied to all
            shards, or one value per shard for heterogeneous fleets.
        coalesce: let every shard advance stable decode runs in one
            event-compressed pass (bit-identical; ``False`` forces the
            per-token reference walk everywhere).
        token_events: materialize per-token DECODE_STEP / FIRST_TOKEN
            events in every shard's log. Flip off for long sweeps —
            records, merged metrics and peak-KV accounting are exact
            either way.
    """

    def __init__(
        self,
        engines: Sequence[MeadowEngine],
        policy: Union[RoutingPolicy, str] = "round-robin",
        kv_budget_bytes=None,
        max_batch=16,
        ctx_bucket=1,
        coalesce: bool = True,
        token_events: bool = True,
    ) -> None:
        if not engines:
            raise ConfigError("a fleet needs at least one engine")
        model = engines[0].model
        for i, engine in enumerate(engines):
            if engine.model != model:
                raise ConfigError(
                    f"fleet engines must serve one model: shard 0 runs "
                    f"{model.name}, shard {i} runs {engine.model.name}"
                )
        self.engines = tuple(engines)
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        n = len(self.engines)
        self.kv_budget_bytes = _per_shard(kv_budget_bytes, n, "kv_budget_bytes")
        self.max_batch = _per_shard(max_batch, n, "max_batch")
        self.ctx_bucket = _per_shard(ctx_bucket, n, "ctx_bucket")
        self.coalesce = coalesce
        self.token_events = token_events

    # ---------------------------------------------------------------- run
    def run(self, source: RequestSource) -> FleetReport:
        """Simulate one scenario across the fleet to completion."""
        policy = self.policy
        policy.reset(len(self.engines))

        # (arrival_s, request_id, Request): the same deterministic FCFS
        # total order the per-shard schedulers use.
        arrivals: List[Tuple[float, int, Request]] = []
        n_rejected = 0

        def harvest(request: Request, finish_s: float) -> Optional[Request]:
            # Shard completion hook: pull the follow-up back to the
            # global router instead of letting the shard keep it.
            nonlocal n_rejected
            follow_up = source.on_complete(request, finish_s)
            if follow_up is None:
                return None
            if any(s.can_ever_admit(follow_up) for s in shards):
                heapq.heappush(
                    arrivals,
                    (follow_up.arrival_s, follow_up.request_id, follow_up),
                )
            else:
                n_rejected += 1
            return None

        shards = [
            ContinuousBatchingScheduler(
                engine,
                source=None,
                kv_budget_bytes=self.kv_budget_bytes[i],
                max_batch=self.max_batch[i],
                ctx_bucket=self.ctx_bucket[i],
                on_complete=harvest,
                coalesce=self.coalesce,
                token_events=self.token_events,
            )
            for i, engine in enumerate(self.engines)
        ]
        # Open-loop sources never inject follow-ups, so once the arrival
        # heap drains the shards are fully independent and each can run
        # dry in one coalesced advance instead of the per-iteration
        # stepping closed-loop routing fidelity requires. A source is
        # open-loop only when on_complete is the base-class no-op and no
        # instance-level hook shadows it.
        open_loop = (
            type(source).on_complete is RequestSource.on_complete
            and "on_complete" not in getattr(source, "__dict__", {})
        )

        seen_ids = set()
        for req in source.initial():
            if req.request_id in seen_ids:
                raise ConfigError(
                    f"duplicate request id {req.request_id} in fleet stream"
                )
            seen_ids.add(req.request_id)
            if not any(s.can_ever_admit(req) for s in shards):
                # Mirror the single-engine fail-fast: an initial request
                # that can never run anywhere is a configuration error.
                shards[0]._check(req)  # raises with the precise reason
            heapq.heappush(arrivals, (req.arrival_s, req.request_id, req))
        if not arrivals:
            raise ConfigError(f"source {source.name!r} produced no requests")

        decisions: List[RoutingDecision] = []
        while True:
            if arrivals:
                t, request_id, req = heapq.heappop(arrivals)
                # No shard may lag the routing instant: advance each to
                # t (steps in flight may overshoot — shards are busy
                # until their clock, which the snapshot exposes).
                for shard in shards:
                    shard.advance_until(t)
                if arrivals and arrivals[0][0] < t:
                    # Advancing produced a closed-loop follow-up that
                    # arrives earlier; route it first.
                    heapq.heappush(arrivals, (t, request_id, req))
                    continue
                feasible = [
                    shard.snapshot(i)
                    for i, shard in enumerate(shards)
                    if shard.can_ever_admit(req)
                ]
                choice = policy.route(req, t, feasible)
                chosen = next(
                    (snap for snap in feasible if snap.shard_id == choice), None
                )
                if chosen is None:
                    raise ConfigError(
                        f"policy {policy.name!r} routed request "
                        f"{request_id} to infeasible shard {choice}"
                    )
                shards[choice].submit(req)
                decisions.append(
                    RoutingDecision(
                        request_id,
                        t,
                        choice,
                        policy.predicted_ttft_s(req, t, chosen),
                    )
                )
            else:
                # Drain: step the earliest-clock busy shard one
                # iteration at a time, so a completion's closed-loop
                # follow-up re-enters global routing immediately — not
                # after every shard has already simulated past it. This
                # keeps a one-shard closed-loop fleet identical to
                # single-engine serving and routing snapshots honest.
                # Open-loop streams have no follow-ups to interleave, so
                # each shard drains in one coalesced pass instead.
                busy = [shard for shard in shards if not shard.idle]
                if not busy:
                    break
                if open_loop:
                    for shard in busy:
                        shard.advance_until(math.inf)
                else:
                    min(busy, key=lambda shard: shard.clock_s).advance_one()

        shard_results = tuple(shard.result() for shard in shards)
        result = FleetResult(
            model_name=self.engines[0].model.name,
            policy_name=policy.name,
            source_name=source.name,
            shard_results=shard_results,
            decisions=tuple(decisions),
            n_rejected_followups=n_rejected,
        )
        return FleetReport(
            result=result,
            metrics=merge_results(shard_results),
            shard_metrics=tuple(
                FleetMetrics.from_result(r) for r in shard_results
            ),
        )
