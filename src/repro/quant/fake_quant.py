"""Absmax (symmetric) fake quantization for W8A8 execution.

The paper quantizes weights and activations to 8 bits with SmoothQuant
post-training quantization. This module provides the symmetric absmax
quantizer both SmoothQuant and our functional simulator build on:

    q = clip(round(x / scale), -2^{b-1}+1, 2^{b-1}-1),   scale = absmax / (2^{b-1}-1)

Per-tensor and per-channel granularities are supported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = ["QuantizedTensor", "absmax_scale", "quantize", "dequantize", "quantize_per_channel"]


def _check_bits(bits: int) -> None:
    if bits not in (4, 8, 16):
        raise ConfigError(f"bits must be 4, 8 or 16, got {bits}")


def _int_dtype(bits: int) -> np.dtype:
    return np.dtype(np.int8) if bits <= 8 else np.dtype(np.int16)


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor with its dequantization scale(s).

    ``scale`` is a scalar for per-tensor quantization or an array
    broadcastable against ``data`` for per-channel quantization.
    """

    data: np.ndarray
    scale: np.ndarray
    bits: int

    def __post_init__(self) -> None:
        _check_bits(self.bits)
        limit = 2 ** (self.bits - 1) - 1
        if self.data.size and (self.data.max() > limit or self.data.min() < -limit):
            raise ConfigError(f"quantized data exceeds {self.bits}-bit symmetric range")

    def dequantize(self) -> np.ndarray:
        """Recover the float approximation ``data * scale``."""
        return self.data.astype(np.float64) * self.scale

    @property
    def shape(self) -> tuple:
        """Shape of the integer payload."""
        return self.data.shape


def absmax_scale(x: np.ndarray, bits: int = 8, axis: int | None = None) -> np.ndarray:
    """Symmetric absmax scale: ``max|x| / (2^{b-1}-1)`` (never zero).

    With ``axis`` given, the scale is computed per slice along that axis
    and keeps its dimension for broadcasting.
    """
    _check_bits(bits)
    limit = 2 ** (bits - 1) - 1
    if axis is None:
        amax = np.abs(x).max() if x.size else 0.0
        amax = float(amax)
        return np.asarray(amax / limit if amax > 0 else 1.0 / limit)
    amax = np.abs(x).max(axis=axis, keepdims=True)
    amax = np.where(amax > 0, amax, 1.0)
    return amax / limit


def quantize(x: np.ndarray, bits: int = 8, axis: int | None = None) -> QuantizedTensor:
    """Symmetric fake quantization of ``x`` (per-tensor or per-axis)."""
    scale = absmax_scale(x, bits=bits, axis=axis)
    limit = 2 ** (bits - 1) - 1
    q = np.clip(np.round(x / scale), -limit, limit).astype(_int_dtype(bits))
    return QuantizedTensor(data=q, scale=np.asarray(scale), bits=bits)


def quantize_per_channel(w: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Per-output-channel quantization of a ``[out, in]`` weight matrix."""
    if w.ndim != 2:
        raise ConfigError(f"expected a 2-D weight matrix, got shape {w.shape}")
    return quantize(w, bits=bits, axis=1)


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Convenience wrapper over :meth:`QuantizedTensor.dequantize`."""
    return q.dequantize()
