"""SmoothQuant-style activation-to-weight difficulty migration.

SmoothQuant (Xiao et al., 2023) observes that LLM activations carry
per-channel outliers that wreck per-tensor int8 quantization, while
weights are easy to quantize. It migrates the difficulty with a
per-input-channel rescale:

    Y = (X diag(s)^{-1}) (diag(s) W),    s_j = max|X_j|^alpha / max|W_j|^{1-alpha}

The transformed pair quantizes to W8A8 with far lower error. The paper
uses SmoothQuant-quantized OPT checkpoints; our reproduction uses the
same transformation on synthetic tensors, and the tests verify the
error-reduction property the technique exists for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .fake_quant import QuantizedTensor, quantize

__all__ = ["SmoothedPair", "smooth_scales", "smooth", "w8a8_matmul_error"]


@dataclass(frozen=True)
class SmoothedPair:
    """An activation/weight pair after difficulty migration."""

    activations: np.ndarray
    weights: np.ndarray
    scales: np.ndarray

    def quantized(self, bits: int = 8) -> tuple[QuantizedTensor, QuantizedTensor]:
        """Per-tensor quantized (activations, weights)."""
        return quantize(self.activations, bits=bits), quantize(self.weights, bits=bits)


def smooth_scales(x: np.ndarray, w: np.ndarray, alpha: float = 0.5) -> np.ndarray:
    """Per-input-channel migration scales ``s_j``.

    Args:
        x: calibration activations ``[n_samples, d_in]``.
        w: weights ``[d_in, d_out]``.
        alpha: migration strength in [0, 1]; 0.5 balances both sides.

    Returns:
        ``s`` of shape ``[d_in]``, strictly positive.
    """
    if not (0.0 <= alpha <= 1.0):
        raise ConfigError(f"alpha must be in [0, 1], got {alpha}")
    if x.ndim != 2 or w.ndim != 2 or x.shape[1] != w.shape[0]:
        raise ConfigError(
            f"shape mismatch: activations {x.shape} vs weights {w.shape}"
        )
    act_max = np.abs(x).max(axis=0)
    w_max = np.abs(w).max(axis=1)
    act_max = np.where(act_max > 0, act_max, 1e-8)
    w_max = np.where(w_max > 0, w_max, 1e-8)
    s = act_max**alpha / w_max ** (1.0 - alpha)
    return np.where(s > 0, s, 1.0)


def smooth(x: np.ndarray, w: np.ndarray, alpha: float = 0.5) -> SmoothedPair:
    """Apply the SmoothQuant transformation to an (X, W) pair."""
    s = smooth_scales(x, w, alpha=alpha)
    return SmoothedPair(activations=x / s, weights=w * s[:, None], scales=s)


def w8a8_matmul_error(x: np.ndarray, w: np.ndarray, alpha: float | None = 0.5) -> float:
    """Relative Frobenius error of a W8A8 matmul vs the fp reference.

    ``alpha=None`` skips smoothing (the naive-quantization baseline);
    otherwise the pair is smoothed first. Used by tests and examples to
    demonstrate that smoothing reduces quantization error on
    outlier-bearing activations.
    """
    reference = x @ w
    if alpha is None:
        xq, wq = quantize(x), quantize(w)
    else:
        xq, wq = smooth(x, w, alpha=alpha).quantized()
    approx = xq.dequantize() @ wq.dequantize()
    denom = np.linalg.norm(reference)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(approx - reference) / denom)
