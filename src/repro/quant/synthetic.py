"""Calibrated synthetic int8 weight generation.

The paper packs *real* SmoothQuant-quantized OPT weights; those
checkpoints are not available offline, so we generate synthetic int8
matrices whose chunk-level statistics are calibrated to the measurements
the paper reports:

* OPT-125M decoder-1 MLP1 decomposes into ~1.3k unique chunks (11-bit
  encoded precision) at high reduction ratio (Sec. 6.3 / Fig. 10a);
* reduction ratios across decoder layers span 10^2–10^3 (Fig. 4a);
* frequency-aware packing compresses MLP weights ~2.6x but the *average*
  across all matrices is ~1.4–1.6x (implied by the decode TBT gains).

Quantized LLM weights are strongly peaked around zero with rare large
outliers (the outliers set the absmax scale, squeezing the bulk into few
integer levels — the exact effect SmoothQuant exploits). We model this
as a discretized Laplace core plus a sparse uniform outlier tail:

    w ~ round(Laplace(0, b)),  with frac. ``outlier_frac`` replaced by
        sign * Uniform[outlier_min, 127]

``b`` (the *core scale*, in int8 counts) controls redundancy: small ``b``
means few occupied levels and heavy chunk reuse. MLP matrices use a
smaller core scale than attention projections, and the scale grows with
layer depth — both trends visible in the paper's per-layer reduction
ratios.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np

from ..errors import ConfigError
from ..models import OpKind, TransformerConfig, WEIGHT_OP_KINDS

__all__ = [
    "WeightProfile",
    "profile_for_op",
    "generate_int8_weights",
    "weight_shape_for_op",
    "layer_weight_specs",
    "stable_seed",
]


@dataclass(frozen=True)
class WeightProfile:
    """Distribution parameters for one synthetic int8 weight matrix."""

    name: str
    core_scale: float
    outlier_frac: float = 5e-4
    outlier_min: int = 30
    outlier_max: int = 127

    def __post_init__(self) -> None:
        if self.core_scale <= 0:
            raise ConfigError(f"core_scale must be positive, got {self.core_scale}")
        if not (0.0 <= self.outlier_frac < 0.1):
            raise ConfigError(f"outlier_frac must be in [0, 0.1), got {self.outlier_frac}")
        if not (0 < self.outlier_min <= self.outlier_max <= 127):
            raise ConfigError(
                f"need 0 < outlier_min <= outlier_max <= 127, got "
                f"[{self.outlier_min}, {self.outlier_max}]"
            )

    def cache_key(self) -> Tuple:
        """Hashable identity of the distribution (for stats caching)."""
        return (self.core_scale, self.outlier_frac, self.outlier_min, self.outlier_max)


#: Calibrated core scales at layer 0 -> last layer (linear in depth).
_MLP_CORE_RANGE = (1.0, 2.4)
_ATTN_CORE_RANGE = (5.0, 10.0)


def profile_for_op(kind: OpKind, layer_index: int, n_layers: int) -> WeightProfile:
    """The calibrated profile for one weight matrix of one layer.

    MLP matrices are the most redundant (smallest core scale); attention
    projections are wider. Redundancy decays with depth, reproducing the
    per-layer spread of Fig. 4a.
    """
    if kind not in WEIGHT_OP_KINDS:
        raise ConfigError(f"{kind} carries no trained weights")
    if n_layers <= 0 or not (0 <= layer_index < n_layers):
        raise ConfigError(f"bad layer index {layer_index} for {n_layers} layers")
    depth = layer_index / max(1, n_layers - 1)
    if kind in (OpKind.MLP_FC1, OpKind.MLP_FC2):
        lo, hi = _MLP_CORE_RANGE
        frac = 5e-4
    else:
        lo, hi = _ATTN_CORE_RANGE
        frac = 2e-4
    return WeightProfile(
        name=f"{kind.value}-L{layer_index}",
        core_scale=lo + depth * (hi - lo),
        outlier_frac=frac,
    )


def stable_seed(*parts: object) -> int:
    """Deterministic 32-bit seed from arbitrary string-able parts."""
    text = "|".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


def generate_int8_weights(
    shape: Tuple[int, int], profile: WeightProfile, seed: int = 0
) -> np.ndarray:
    """Draw one synthetic int8 weight matrix.

    Args:
        shape: ``[out_features, in_features]``.
        profile: distribution parameters.
        seed: RNG seed (deterministic output for a given (shape, profile, seed)).

    Returns:
        ``int8`` array of the requested shape.
    """
    rows, cols = shape
    if rows <= 0 or cols <= 0:
        raise ConfigError(f"weight shape must be positive, got {shape}")
    rng = np.random.default_rng(seed)
    core = rng.laplace(0.0, profile.core_scale, size=rows * cols)
    w = np.clip(np.round(core), -127, 127).astype(np.int8)
    n_outliers = int(round(profile.outlier_frac * w.size))
    if n_outliers > 0:
        idx = rng.choice(w.size, size=n_outliers, replace=False)
        mags = rng.integers(profile.outlier_min, profile.outlier_max + 1, size=n_outliers)
        signs = rng.choice(np.array([-1, 1], dtype=np.int64), size=n_outliers)
        w[idx] = (mags * signs).astype(np.int8)
    return w.reshape(rows, cols)


def weight_shape_for_op(model: TransformerConfig, kind: OpKind) -> Tuple[int, int]:
    """Weight matrix shape ``[out, in]`` of one op (reduction dim last)."""
    d, ff = model.d_model, model.d_ff
    shapes = {
        OpKind.Q_PROJ: (d, d),
        OpKind.K_PROJ: (model.kv_dim, d),
        OpKind.V_PROJ: (model.kv_dim, d),
        OpKind.OUT_PROJ: (d, d),
        OpKind.MLP_FC1: (ff, d),
        OpKind.MLP_FC2: (d, ff),
    }
    try:
        return shapes[kind]
    except KeyError:
        raise ConfigError(f"{kind} carries no trained weights") from None


def layer_weight_specs(
    model: TransformerConfig, layer_index: int
) -> Iterator[Tuple[OpKind, Tuple[int, int], WeightProfile]]:
    """Yield (op kind, shape, profile) for every weight matrix of a layer."""
    for kind in (
        OpKind.Q_PROJ,
        OpKind.K_PROJ,
        OpKind.V_PROJ,
        OpKind.OUT_PROJ,
        OpKind.MLP_FC1,
        OpKind.MLP_FC2,
    ):
        yield kind, weight_shape_for_op(model, kind), profile_for_op(
            kind, layer_index, model.n_layers
        )


def generate_layer_weights(
    model: TransformerConfig, layer_index: int, base_seed: int = 0
) -> Dict[OpKind, np.ndarray]:
    """All six weight matrices of one layer, deterministically seeded."""
    out: Dict[OpKind, np.ndarray] = {}
    for kind, shape, profile in layer_weight_specs(model, layer_index):
        seed = stable_seed(model.name, kind.value, layer_index, base_seed)
        out[kind] = generate_int8_weights(shape, profile, seed=seed)
    return out
