"""Quantization substrate: W8A8 fake quantization, SmoothQuant migration,
and the calibrated synthetic int8 weight generator that substitutes for
the unavailable OPT/DeiT checkpoints (see DESIGN.md, substitution table).
"""

from .fake_quant import (
    QuantizedTensor,
    absmax_scale,
    dequantize,
    quantize,
    quantize_per_channel,
)
from .smoothquant import SmoothedPair, smooth, smooth_scales, w8a8_matmul_error
from .synthetic import (
    WeightProfile,
    generate_int8_weights,
    generate_layer_weights,
    layer_weight_specs,
    profile_for_op,
    stable_seed,
    weight_shape_for_op,
)

__all__ = [
    "QuantizedTensor",
    "absmax_scale",
    "quantize",
    "quantize_per_channel",
    "dequantize",
    "SmoothedPair",
    "smooth",
    "smooth_scales",
    "w8a8_matmul_error",
    "WeightProfile",
    "generate_int8_weights",
    "generate_layer_weights",
    "layer_weight_specs",
    "profile_for_op",
    "stable_seed",
    "weight_shape_for_op",
]
