"""Static-scale calibration for the functional simulator.

SmoothQuant-style W8A8 deployment fixes every requantization scale ahead
of time from a calibration set. The functional simulator ships with
heuristic scales; this module runs a calibration pass over sample
activations, observes the pre-requantization dynamic range at every
interface, and rewrites the scales so the int8 range is actually used.

Scales stay *static* afterwards — the property the exactness tests rely
on (TPHS vs GEMM equality holds for any fixed scales; calibration just
makes the numerics healthy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import SimulationError
from .decoder import TinyTransformer
from .ops import INT8_MAX, int_matmul

__all__ = ["CalibrationReport", "calibrate"]


@dataclass(frozen=True)
class CalibrationReport:
    """Observed ranges and the scales chosen from them."""

    observed_absmax: Dict[str, float]
    chosen_scales: Dict[str, float]

    def scale_for(self, key: str) -> float:
        """Scale chosen for one interface (e.g. ``'layer0.q'``)."""
        return self.chosen_scales[key]


def _absmax_scale(absmax: float, percentile_headroom: float) -> float:
    """Scale mapping the observed range onto the int8 grid."""
    effective = max(absmax, 1e-8) * percentile_headroom
    return effective / INT8_MAX


def calibrate(
    model: TinyTransformer,
    samples: List[np.ndarray],
    percentile_headroom: float = 1.05,
) -> CalibrationReport:
    """Calibrate the q/k/v requantization scales of every layer.

    Args:
        model: functional transformer to calibrate in place.
        samples: list of int8 prompts (``[T, D]``) drawn from the target
            distribution.
        percentile_headroom: multiplicative slack above the observed
            absmax (guards against clipping on unseen data).

    Returns:
        The observed ranges and chosen scales, keyed ``layer{i}.{q,k,v}``.
    """
    if not samples:
        raise SimulationError("calibration needs at least one sample")
    if percentile_headroom < 1.0:
        raise SimulationError("headroom must be >= 1.0")

    observed: Dict[str, float] = {}
    chosen: Dict[str, float] = {}
    for i, layer in enumerate(model.layers):
        attn = layer.attention
        for name, w, w_scale in (
            ("q", attn.wq, attn.wq_scale),
            ("k", attn.wk, attn.wk_scale),
            ("v", attn.wv, attn.wv_scale),
        ):
            absmax = 0.0
            for x in samples:
                if x.dtype != np.int8 or x.ndim != 2:
                    raise SimulationError("samples must be int8 [T, D]")
                acc = int_matmul(x, np.ascontiguousarray(w.T))
                absmax = max(absmax, float(np.abs(acc).max()) * attn.x_scale * w_scale)
            key = f"layer{i}.{name}"
            observed[key] = absmax
            chosen[key] = _absmax_scale(absmax, percentile_headroom)
        attn.q_scale = chosen[f"layer{i}.q"]
        attn.k_scale = chosen[f"layer{i}.k"]
        attn.v_scale = chosen[f"layer{i}.v"]
        # The EXP LUT granularity follows the QK^T accumulator scale.
        from .ops import ExpLut

        attn.lut = ExpLut(score_scale=attn.q_scale * attn.k_scale)
    return CalibrationReport(observed_absmax=observed, chosen_scales=chosen)
