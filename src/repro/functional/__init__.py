"""Functional int8 simulator: exact integer kernels, LUT softmax,
attention in both execution orders, KV cache, and a complete decoder
stack. Proves the paper's losslessness claims bit-for-bit.
"""

from .attention import AttentionParams, attention_reference, attention_tphs
from .audit import MacCounter, attention_stream_macs, count_macs, expected_forward_macs
from .calibration import CalibrationReport, calibrate
from .decoder import DecoderLayerParams, TinyTransformer
from .generation import SyntheticLmHead, greedy_generate
from .kv_cache import KvCache
from .ops import (
    ACC_LIMIT,
    ExpLut,
    INT8_MAX,
    gelu_int8,
    int_matmul,
    layernorm_int8,
    layernorm_int8_integer,
    lut_softmax,
    quantize_static,
    relu_int8,
    requantize,
)

__all__ = [
    "AttentionParams",
    "attention_reference",
    "attention_tphs",
    "CalibrationReport",
    "calibrate",
    "SyntheticLmHead",
    "greedy_generate",
    "MacCounter",
    "count_macs",
    "expected_forward_macs",
    "attention_stream_macs",
    "DecoderLayerParams",
    "TinyTransformer",
    "KvCache",
    "ExpLut",
    "INT8_MAX",
    "ACC_LIMIT",
    "int_matmul",
    "lut_softmax",
    "layernorm_int8",
    "layernorm_int8_integer",
    "quantize_static",
    "relu_int8",
    "gelu_int8",
    "requantize",
]
