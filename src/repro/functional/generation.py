"""Greedy token generation on the functional stack.

The functional decoder works on activations; this module closes the loop
with a synthetic embedding table and LM head so generation produces
actual token IDs. There is no trained tokenizer offline — the vocabulary
is synthetic — but the *mechanics* (embed, decode step, argmax, feed
back) exercise the exact code paths a deployment would, and the
generation-equivalence test (TPHS vs GEMM produce identical token
sequences) is the end-to-end form of the paper's losslessness claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import SimulationError
from .decoder import TinyTransformer
from .ops import int_matmul, quantize_static

__all__ = ["SyntheticLmHead", "greedy_generate"]


@dataclass
class SyntheticLmHead:
    """Embedding table + tied LM head over a synthetic vocabulary."""

    vocab_size: int
    d_model: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise SimulationError(f"vocab must have >= 2 tokens, got {self.vocab_size}")
        rng = np.random.default_rng(self.seed)
        table = rng.normal(0, 0.4, size=(self.vocab_size, self.d_model))
        self.embedding = quantize_static(table, 0.05)

    def embed(self, token_ids: np.ndarray) -> np.ndarray:
        """int8 embeddings (``[T, D]``) for a token-ID sequence."""
        ids = np.asarray(token_ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise SimulationError("token id out of vocabulary")
        return self.embedding[ids]

    def logits(self, hidden: np.ndarray) -> np.ndarray:
        """Integer logits via the tied embedding (``hidden @ E^T``)."""
        if hidden.dtype != np.int8:
            raise SimulationError("hidden states must be int8")
        return int_matmul(hidden, np.ascontiguousarray(self.embedding.T))

    def greedy_token(self, hidden: np.ndarray) -> int:
        """Argmax token for the last position (ties break to lowest ID)."""
        return int(np.argmax(self.logits(hidden[-1:])[0]))


def greedy_generate(
    model: TinyTransformer,
    head: SyntheticLmHead,
    prompt_ids: List[int],
    n_new: int,
) -> List[int]:
    """Greedy decoding: prefill the prompt, then generate ``n_new`` IDs."""
    if not prompt_ids:
        raise SimulationError("prompt must contain at least one token")
    if n_new < 0:
        raise SimulationError(f"n_new must be non-negative, got {n_new}")
    model.reset()
    hidden = model.forward(head.embed(np.array(prompt_ids)))
    generated: List[int] = []
    for _ in range(n_new):
        token = head.greedy_token(hidden)
        generated.append(token)
        hidden = model.forward(head.embed(np.array([token])))
    return generated
