"""Functional multi-head attention: GEMM-ordered reference vs TPHS order.

Both executors compute the *same* integer formula; they differ only in
loop structure:

* :func:`attention_reference` — batch GEMM order (all heads at once,
  vectorized), the mathematical reference.
* :func:`attention_tphs` — the paper's token-parallel head-sequential
  schedule: heads outermost, token groups of ``lane_width`` flowing
  through Q -> QK^T -> streaming MAX/EXP/DIV -> broadcast SM x V, with
  the softmax statistics and SM x V accumulators built up *sequentially*
  over the key/value stream exactly as the pipeline hardware does.

Integer arithmetic is exact and associative here, so the two must agree
bit for bit — the property test that pins the TPHS dataflow as a pure
re-ordering (no approximation), mirroring the paper's losslessness claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from .kv_cache import KvCache
from .ops import ExpLut, int_matmul, lut_softmax, requantize

__all__ = ["AttentionParams", "attention_reference", "attention_tphs"]


@dataclass
class AttentionParams:
    """Weights and static quantization scales of one attention layer."""

    wq: np.ndarray  # [D, D] int8, rows = output features
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    n_heads: int
    x_scale: float = 0.05
    wq_scale: float = 0.01
    wk_scale: float = 0.01
    wv_scale: float = 0.01
    wo_scale: float = 0.01
    q_scale: float = 0.1
    k_scale: float = 0.1
    v_scale: float = 0.1
    attn_scale: float = 0.05
    out_scale: float = 0.05
    prob_bits: int = 8
    lut: ExpLut = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        d = self.wq.shape[0]
        for name in ("wq", "wk", "wv", "wo"):
            w = getattr(self, name)
            if w.shape != (d, d) or w.dtype != np.int8:
                raise SimulationError(f"{name} must be int8 [{d}, {d}]")
        if d % self.n_heads:
            raise SimulationError("d_model must divide into heads")
        if self.lut is None:
            # Score scale: Q and K are int8 with their own scales; the
            # integer QK^T accumulator carries scale q_scale * k_scale.
            self.lut = ExpLut(score_scale=self.q_scale * self.k_scale)

    @property
    def d_model(self) -> int:
        """Model width ``D``."""
        return self.wq.shape[0]

    @property
    def head_dim(self) -> int:
        """Per-head width ``HD``."""
        return self.d_model // self.n_heads


def _project(x: np.ndarray, w: np.ndarray, x_scale: float, w_scale: float,
             out_scale: float) -> np.ndarray:
    """int8 linear projection ``x @ w.T`` with static requantization."""
    acc = int_matmul(x, np.ascontiguousarray(w.T))
    return requantize(acc, x_scale * w_scale, out_scale)


def _project_kv(params: AttentionParams, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    k = _project(x, params.wk, params.x_scale, params.wk_scale, params.k_scale)
    v = _project(x, params.wv, params.x_scale, params.wv_scale, params.v_scale)
    return k, v


def attention_reference(
    params: AttentionParams, x: np.ndarray, cache: KvCache
) -> np.ndarray:
    """GEMM-ordered attention over ``x`` (``[T, D]`` int8), updating the cache.

    Returns the int8 attention output (post out-projection, scale
    ``params.out_scale``).
    """
    if x.ndim != 2 or x.shape[1] != params.d_model or x.dtype != np.int8:
        raise SimulationError(f"x must be int8 [T, {params.d_model}]")
    q = _project(x, params.wq, params.x_scale, params.wq_scale, params.q_scale)
    k_new, v_new = _project_kv(params, x)
    cache.append(k_new, v_new)

    hd = params.head_dim
    t = x.shape[0]
    attn = np.empty((t, params.d_model), dtype=np.int8)
    for h in range(params.n_heads):
        k_h, v_h = cache.head_slices(h)
        q_h = q[:, h * hd : (h + 1) * hd]
        scores = int_matmul(q_h, np.ascontiguousarray(k_h.T))
        probs = lut_softmax(scores, params.lut, out_bits=params.prob_bits)
        acc = probs.astype(np.int64) @ v_h.astype(np.int64)
        attn[:, h * hd : (h + 1) * hd] = requantize(
            acc, params.v_scale / (1 << params.prob_bits), params.attn_scale
        )
    return _project(attn, params.wo, params.attn_scale, params.wo_scale, params.out_scale)


def attention_tphs(
    params: AttentionParams,
    x: np.ndarray,
    cache: KvCache,
    lane_width: int = 2,
) -> np.ndarray:
    """TPHS-ordered attention: heads sequential, token lanes parallel.

    K/V are projected first (GEMM mode, as on the hardware), then each
    head streams every token group through the pipeline stages with
    *sequential* accumulation over the key/value axis.
    """
    if lane_width < 1:
        raise SimulationError(f"lane_width must be >= 1, got {lane_width}")
    if x.ndim != 2 or x.shape[1] != params.d_model or x.dtype != np.int8:
        raise SimulationError(f"x must be int8 [T, {params.d_model}]")
    k_new, v_new = _project_kv(params, x)
    cache.append(k_new, v_new)

    hd = params.head_dim
    t = x.shape[0]
    kv_len = len(cache)
    attn = np.empty((t, params.d_model), dtype=np.int8)
    wq_t = np.ascontiguousarray(params.wq.T)

    for h in range(params.n_heads):  # heads sequential
        k_h, v_h = cache.head_slices(h)
        wq_h = np.ascontiguousarray(wq_t[:, h * hd : (h + 1) * hd])
        for g0 in range(0, t, lane_width):  # token groups through the pipe
            lanes = slice(g0, min(g0 + lane_width, t))
            # Q stage: per-lane projection of this head's slice only.
            q_acc = int_matmul(x[lanes], wq_h)
            q_g = requantize(q_acc, params.x_scale * params.wq_scale, params.q_scale)

            # QK^T stage: one key per cycle, scores built sequentially.
            n_lanes = q_g.shape[0]
            scores = np.empty((n_lanes, kv_len), dtype=np.int64)
            for j in range(kv_len):
                scores[:, j] = (
                    q_g.astype(np.int64) * k_h[j].astype(np.int64)
                ).sum(axis=1)

            # MAX stage: streaming maxima.
            row_max = scores[:, 0].copy()
            for j in range(1, kv_len):
                row_max = np.maximum(row_max, scores[:, j])
            # EXP stage: LUT lookups + streaming sum.
            exps = params.lut.lookup(row_max[:, None] - scores).astype(np.int64)
            denom = np.zeros(n_lanes, dtype=np.int64)
            for j in range(kv_len):
                denom += exps[:, j]
            # DIV stage.
            probs = np.minimum(
                (exps << params.prob_bits) // denom[:, None],
                (1 << params.prob_bits) - 1,
            )

            # SM x V stage: broadcast accumulate, one value-row per cycle.
            acc = np.zeros((n_lanes, hd), dtype=np.int64)
            for j in range(kv_len):
                acc += probs[:, j, None] * v_h[j].astype(np.int64)
            attn[lanes, h * hd : (h + 1) * hd] = requantize(
                acc, params.v_scale / (1 << params.prob_bits), params.attn_scale
            )
    return _project(attn, params.wo, params.attn_scale, params.wo_scale, params.out_scale)
