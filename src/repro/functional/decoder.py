"""Functional transformer decoder built on the integer kernels.

A :class:`TinyTransformer` assembles decoder layers with synthetic int8
weights, supporting both execution orders (``"gemm"`` reference and
``"tphs"``) and optional weight packing round-trips through the WILU
decoder. Its tests carry the paper's two exactness claims end to end:
packed weights and TPHS scheduling change *nothing* in the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional

import numpy as np

from ..errors import SimulationError
from ..models import TransformerConfig
from ..packing import PackingConfig, pack_weights
from .attention import AttentionParams, attention_reference, attention_tphs
from .kv_cache import KvCache
from .ops import gelu_int8, layernorm_int8, quantize_static, relu_int8, int_matmul, requantize

__all__ = ["DecoderLayerParams", "TinyTransformer"]


@dataclass
class DecoderLayerParams:
    """Weights + static scales of one decoder layer."""

    attention: AttentionParams
    w_fc1: np.ndarray  # [FF, D] int8
    w_fc2: np.ndarray  # [D, FF] int8
    fc1_scale: float = 0.01
    fc2_scale: float = 0.01
    hidden_scale: float = 0.05
    ln_gamma: np.ndarray = field(default=None)  # type: ignore[assignment]
    ln_beta: np.ndarray = field(default=None)  # type: ignore[assignment]
    activation: str = "relu"

    def __post_init__(self) -> None:
        d = self.attention.d_model
        if self.w_fc1.ndim != 2 or self.w_fc1.shape[1] != d:
            raise SimulationError(f"w_fc1 must be [FF, {d}]")
        if self.w_fc2.shape != (d, self.w_fc1.shape[0]):
            raise SimulationError(f"w_fc2 must be [{d}, {self.w_fc1.shape[0]}]")
        if self.ln_gamma is None:
            self.ln_gamma = np.ones(d)
        if self.ln_beta is None:
            self.ln_beta = np.zeros(d)


class TinyTransformer:
    """A small but complete functional decoder stack.

    Args:
        model: shape configuration (use small custom configs in tests —
            full OPT shapes work but are slow in pure Python order).
        seed: synthetic weight seed.
        execution: ``"gemm"`` (reference order) or ``"tphs"``.
        lane_width: TPHS token-parallel lane count.
    """

    def __init__(
        self,
        model: TransformerConfig,
        seed: int = 0,
        execution: Literal["gemm", "tphs"] = "gemm",
        lane_width: int = 2,
    ) -> None:
        if execution not in ("gemm", "tphs"):
            raise SimulationError(f"unknown execution order {execution!r}")
        self.model = model
        self.execution = execution
        self.lane_width = lane_width
        rng = np.random.default_rng(seed)
        self.layers: List[DecoderLayerParams] = [
            self._init_layer(model, rng) for _ in range(model.n_layers)
        ]
        self.caches: List[KvCache] = [
            KvCache(model.d_model, model.n_heads) for _ in range(model.n_layers)
        ]
        self.x_scale = 0.05

    @staticmethod
    def _init_layer(model: TransformerConfig, rng: np.random.Generator) -> DecoderLayerParams:
        d, ff = model.d_model, model.d_ff

        def w(rows: int, cols: int) -> np.ndarray:
            vals = np.clip(np.round(rng.laplace(0.0, 3.0, size=(rows, cols))), -127, 127)
            return vals.astype(np.int8)

        attn = AttentionParams(
            wq=w(d, d), wk=w(d, d), wv=w(d, d), wo=w(d, d), n_heads=model.n_heads
        )
        return DecoderLayerParams(
            attention=attn,
            w_fc1=w(ff, d),
            w_fc2=w(d, ff),
            activation=model.activation,
        )

    # ------------------------------------------------------------ packing
    def pack_and_restore_weights(self, config: Optional[PackingConfig] = None) -> int:
        """Round-trip every weight matrix through pack -> WILU decode.

        Replaces each matrix with its decoded version and returns the
        total packed bits. Because packing is lossless the model's
        outputs are bit-identical afterwards (tested).
        """
        cfg = config or PackingConfig()
        total_bits = 0
        for layer in self.layers:
            for holder, name in (
                (layer.attention, "wq"),
                (layer.attention, "wk"),
                (layer.attention, "wv"),
                (layer.attention, "wo"),
                (layer, "w_fc1"),
                (layer, "w_fc2"),
            ):
                packed = pack_weights(getattr(holder, name), cfg)
                setattr(holder, name, packed.decode())
                total_bits += packed.total_bits
        return total_bits

    # ------------------------------------------------------------ forward
    def reset(self) -> None:
        """Clear all KV caches (start a new sequence)."""
        self.caches = [
            KvCache(self.model.d_model, self.model.n_heads)
            for _ in range(self.model.n_layers)
        ]

    def _attention(self, layer: DecoderLayerParams, x: np.ndarray, cache: KvCache) -> np.ndarray:
        if self.execution == "tphs":
            return attention_tphs(layer.attention, x, cache, lane_width=self.lane_width)
        return attention_reference(layer.attention, x, cache)

    def _mlp(self, layer: DecoderLayerParams, x: np.ndarray) -> np.ndarray:
        acc = int_matmul(x, np.ascontiguousarray(layer.w_fc1.T))
        hidden = requantize(acc, self.x_scale * layer.fc1_scale, layer.hidden_scale)
        if layer.activation == "relu":
            hidden = relu_int8(hidden)
        else:
            hidden = gelu_int8(hidden, layer.hidden_scale)
        acc2 = int_matmul(hidden, np.ascontiguousarray(layer.w_fc2.T))
        return requantize(acc2, layer.hidden_scale * layer.fc2_scale, self.x_scale)

    def _residual(self, x: np.ndarray, delta: np.ndarray, delta_scale: float) -> np.ndarray:
        summed = x.astype(np.float64) * self.x_scale + delta.astype(np.float64) * delta_scale
        return quantize_static(summed, self.x_scale)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """One pass (prefill: ``[T, D]``; decode: ``[1, D]``), int8 in/out.

        Caches grow by the pass's token count; call :meth:`reset` between
        sequences.
        """
        if x.ndim != 2 or x.shape[1] != self.model.d_model or x.dtype != np.int8:
            raise SimulationError(f"x must be int8 [T, {self.model.d_model}]")
        for layer, cache in zip(self.layers, self.caches):
            normed = layernorm_int8(
                x, self.x_scale, layer.ln_gamma, layer.ln_beta, layer.attention.x_scale
            )
            attn_out = self._attention(layer, normed, cache)
            x = self._residual(x, attn_out, layer.attention.out_scale)
            normed2 = layernorm_int8(
                x, self.x_scale, layer.ln_gamma, layer.ln_beta, self.x_scale
            )
            mlp_out = self._mlp(layer, normed2)
            x = self._residual(x, mlp_out, self.x_scale)
        return x

    def prefill_then_decode(self, prompt: np.ndarray, n_decode: int, seed: int = 1) -> np.ndarray:
        """Run a prompt then ``n_decode`` synthetic decode steps.

        Decode inputs are deterministic pseudo-embeddings (there is no
        tokenizer in the functional substrate); returns the final token's
        activations.
        """
        self.reset()
        out = self.forward(prompt)
        rng = np.random.default_rng(seed)
        last = out[-1:]
        for _ in range(n_decode):
            nxt = quantize_static(
                last.astype(np.float64) * self.x_scale
                + rng.normal(0, 0.01, size=last.shape),
                self.x_scale,
            )
            last = self.forward(nxt)
        return last
