"""KV cache for the functional decode path.

The cache stores int8 K/V projections per layer, organized ``[T, D]``
with heads packed along the feature axis (head ``h`` owns columns
``h*HD : (h+1)*HD``) — matching the per-head ``K_H``/``V_H`` slices the
TPHS dataflow streams from DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError

__all__ = ["KvCache"]


@dataclass
class KvCache:
    """Append-only K/V store of one attention layer."""

    d_model: int
    n_heads: int
    k: np.ndarray = field(init=False)
    v: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.d_model <= 0 or self.n_heads <= 0:
            raise SimulationError("d_model and n_heads must be positive")
        if self.d_model % self.n_heads:
            raise SimulationError("d_model must divide evenly into heads")
        self.k = np.zeros((0, self.d_model), dtype=np.int8)
        self.v = np.zeros((0, self.d_model), dtype=np.int8)

    @property
    def head_dim(self) -> int:
        """Per-head feature width."""
        return self.d_model // self.n_heads

    def __len__(self) -> int:
        return self.k.shape[0]

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append newly projected K/V rows (``[t, D]`` int8)."""
        for name, arr in (("k", k_new), ("v", v_new)):
            if arr.ndim != 2 or arr.shape[1] != self.d_model:
                raise SimulationError(f"{name} rows must be [t, {self.d_model}]")
            if arr.dtype != np.int8:
                raise SimulationError(f"{name} rows must be int8")
        if k_new.shape[0] != v_new.shape[0]:
            raise SimulationError("k and v row counts must match")
        self.k = np.concatenate([self.k, k_new], axis=0)
        self.v = np.concatenate([self.v, v_new], axis=0)

    def head_slices(self, head: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``K_H``/``V_H`` slices (``[T, HD]``) TPHS streams per head."""
        if not (0 <= head < self.n_heads):
            raise SimulationError(f"head {head} out of range")
        hd = self.head_dim
        cols = slice(head * hd, (head + 1) * hd)
        return self.k[:, cols], self.v[:, cols]
