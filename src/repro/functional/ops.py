"""Integer functional kernels: the arithmetic the fabric actually does.

Everything here is deterministic integer math (int8 operands, int32
accumulation, static requantization scales), so the functional simulator
can prove two of the paper's claims *exactly*:

* weight packing is approximation-less — packed-then-decoded weights
  produce bit-identical outputs;
* the TPHS dataflow is a re-ordering, not an approximation — TPHS-ordered
  attention equals the GEMM-ordered reference bit for bit.

The softmax uses the EXP lookup table of the hardware SM module
(Fig. 2d): exponentials of the max-subtracted scores are read from a
quantized LUT and normalized by integer division.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

__all__ = [
    "INT8_MAX",
    "ACC_LIMIT",
    "quantize_static",
    "int_matmul",
    "requantize",
    "ExpLut",
    "lut_softmax",
    "relu_int8",
    "gelu_int8",
    "layernorm_int8",
]

INT8_MAX = 127
#: 32-bit accumulator headroom the PE datapath guarantees.
ACC_LIMIT = 2**31 - 1


def quantize_static(x: np.ndarray, scale: float) -> np.ndarray:
    """Quantize floats to int8 with a fixed (pre-calibrated) scale."""
    if scale <= 0:
        raise SimulationError(f"scale must be positive, got {scale}")
    return np.clip(np.round(x / scale), -INT8_MAX, INT8_MAX).astype(np.int8)


def int_matmul(x: np.ndarray, w_t: np.ndarray) -> np.ndarray:
    """Exact integer matmul ``x @ w_t`` with 32-bit accumulator checks.

    Args:
        x: int8 activations ``[..., K]``.
        w_t: int8 weights ``[K, N]`` (already transposed for the product).

    Returns:
        int64 accumulator values (verified to fit the 32-bit datapath).
    """
    if x.dtype != np.int8 or w_t.dtype != np.int8:
        raise SimulationError("int_matmul expects int8 operands")
    acc = x.astype(np.int64) @ w_t.astype(np.int64)
    if acc.size and (acc.max() > ACC_LIMIT or acc.min() < -ACC_LIMIT - 1):
        raise SimulationError("accumulator overflow: reduction exceeds 32-bit range")
    return acc


def requantize(acc: np.ndarray, in_scale: float, out_scale: float) -> np.ndarray:
    """Requantize int32-range accumulators to int8 at a static scale.

    ``in_scale`` is the product of the operand scales; ``out_scale`` the
    calibrated scale of the output tensor.
    """
    if in_scale <= 0 or out_scale <= 0:
        raise SimulationError("requantize scales must be positive")
    return np.clip(
        np.round(acc * (in_scale / out_scale)), -INT8_MAX, INT8_MAX
    ).astype(np.int8)


@dataclass(frozen=True)
class ExpLut:
    """The SM module's EXP lookup table.

    Maps max-subtracted integer scores ``z in [-depth+1, 0]`` (in units
    of ``score_scale``) to ``exp(z * score_scale)`` in unsigned fixed
    point with ``frac_bits`` fractional bits. Scores below the table
    depth clamp to the last entry (their true exp is ~0 anyway).
    """

    score_scale: float
    depth: int = 256
    frac_bits: int = 15

    def __post_init__(self) -> None:
        if self.score_scale <= 0:
            raise SimulationError("score_scale must be positive")
        if self.depth < 2:
            raise SimulationError("LUT needs at least 2 entries")
        if not (1 <= self.frac_bits <= 30):
            raise SimulationError("frac_bits must be in [1, 30]")

    @property
    def table(self) -> np.ndarray:
        """uint32 fixed-point LUT; index ``i`` holds exp(-i*score_scale)."""
        idx = np.arange(self.depth, dtype=np.float64)
        return np.round(np.exp(-idx * self.score_scale) * (1 << self.frac_bits)).astype(
            np.uint32
        )

    def lookup(self, neg_z: np.ndarray) -> np.ndarray:
        """Fixed-point exp for non-negative ``-z`` integer offsets."""
        if neg_z.size and int(neg_z.min()) < 0:
            raise SimulationError("ExpLut.lookup expects non-negative offsets")
        clipped = np.minimum(neg_z, self.depth - 1)
        return self.table[clipped]


def lut_softmax(scores: np.ndarray, lut: ExpLut, out_bits: int = 8) -> np.ndarray:
    """Numerically stable integer softmax over the last axis (Eq. 1).

    Stages mirror the pipelined SM module: MAX (row maximum), EXP
    (LUT lookup of ``x - max``), DIV (integer division by the exp sum).
    Output probabilities are unsigned ``out_bits``-bit fixed point with
    scale ``2^-out_bits`` (i.e. 0..2^out_bits-1 covering [0, 1)).
    """
    if scores.dtype.kind not in "iu":
        raise SimulationError("lut_softmax expects integer scores")
    if not (2 <= out_bits <= 16):
        raise SimulationError("out_bits must be in [2, 16]")
    z = scores.astype(np.int64)
    row_max = z.max(axis=-1, keepdims=True)
    exps = lut.lookup(row_max - z).astype(np.int64)  # MAX + EXP stages
    denom = exps.sum(axis=-1, keepdims=True)
    # DIV stage: p = exp * 2^out_bits / sum, floor division in hardware.
    probs = (exps << out_bits) // denom
    return np.minimum(probs, (1 << out_bits) - 1).astype(np.int32)


def relu_int8(x: np.ndarray) -> np.ndarray:
    """Integer ReLU (the NL module's cheapest mode)."""
    if x.dtype != np.int8:
        raise SimulationError("relu_int8 expects int8")
    return np.maximum(x, 0).astype(np.int8)


def gelu_int8(x: np.ndarray, scale: float) -> np.ndarray:
    """LUT GeLU: 256-entry table indexed by the int8 input value.

    The NL module evaluates GeLU by lookup, so quantized GeLU is an
    exact function of the int8 input — deterministic across dataflows.
    """
    if x.dtype != np.int8:
        raise SimulationError("gelu_int8 expects int8")
    idx = np.arange(-128, 128, dtype=np.float64) * scale
    gelu = idx * 0.5 * (1.0 + np.tanh(np.sqrt(2 / np.pi) * (idx + 0.044715 * idx**3)))
    table = np.clip(np.round(gelu / scale), -INT8_MAX, INT8_MAX).astype(np.int8)
    return table[x.astype(np.int16) + 128]


def layernorm_int8(
    x: np.ndarray,
    in_scale: float,
    gamma: np.ndarray,
    beta: np.ndarray,
    out_scale: float,
    eps: float = 1e-5,
) -> np.ndarray:
    """Layer normalization over the last axis with int8 interfaces.

    The LN module computes statistics in wide fixed point; we model that
    as exact real arithmetic on the dequantized values followed by static
    requantization — deterministic, hence identical across dataflows.
    See :func:`layernorm_int8_integer` for the bit-accurate integer-only
    variant of the LN module datapath.
    """
    xf = x.astype(np.float64) * in_scale
    mean = xf.mean(axis=-1, keepdims=True)
    var = xf.var(axis=-1, keepdims=True)
    normed = (xf - mean) / np.sqrt(var + eps) * gamma + beta
    return quantize_static(normed, out_scale)


def _int_sqrt(values: np.ndarray) -> np.ndarray:
    """Exact integer square root (``floor(sqrt(v))``) per element.

    ``math.isqrt`` is exact for arbitrary integers; the hardware
    equivalent is the classic shift-subtract restoring square root the
    LN module can implement in a handful of cycles.
    """
    v = values
    if v.size and int(v.min()) < 0:
        raise SimulationError("integer sqrt requires non-negative inputs")
    return np.frompyfunc(math.isqrt, 1, 1)(v.astype(object)).astype(np.int64)


def layernorm_int8_integer(
    x: np.ndarray,
    gamma_q: np.ndarray,
    beta_q: np.ndarray,
    frac_bits: int = 12,
) -> np.ndarray:
    """Integer-only layer normalization (I-BERT-style LN datapath).

    All arithmetic is integral: int64 sums for the mean, int64 squared
    deviations for the variance, an exact integer square root
    (shift-subtract in hardware), and fixed-point affine parameters
    (``gamma_q``/``beta_q`` carry ``frac_bits`` fractional bits, so a
    float gain ``g`` is passed as ``round(g * 2^frac_bits)``).

    Deterministic and scale-free, so it preserves every cross-dataflow
    equivalence, while modeling the LN module's integer datapath.
    """
    if x.dtype != np.int8:
        raise SimulationError("layernorm_int8_integer expects int8 input")
    if gamma_q.dtype.kind not in "iu" or beta_q.dtype.kind not in "iu":
        raise SimulationError("gamma_q/beta_q must be integer fixed point")
    n = x.shape[-1]
    f = np.int64(frac_bits)
    xi = x.astype(np.int64)
    total = xi.sum(axis=-1, keepdims=True)
    # Centered values scaled by n to stay integral: c = n*(x - mean).
    centered = n * xi - total
    sq_sum = (centered * centered).sum(axis=-1, keepdims=True)  # n^3 * var
    # std of the *centered* values: sqrt(mean(c^2)) = n * std(x).
    std_c = np.maximum(_int_sqrt(sq_sum // n), 1)
    # normalized = c / std_c = (x - mean) / std, in 2^f fixed point.
    normed = (centered << f) // std_c
    out = (normed * gamma_q.astype(np.int64) >> (2 * f)) + (
        beta_q.astype(np.int64) >> f
    )
    return np.clip(out, -INT8_MAX, INT8_MAX).astype(np.int8)
