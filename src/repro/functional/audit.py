"""Cross-layer MAC audit: functional execution vs the performance model.

The performance simulator *prices* MACs it never executes; the
functional simulator *executes* MACs it never prices. This module counts
the multiply-accumulates the functional stack actually performs and
compares them against the op-graph's analytic counts — a consistency
check across the two halves of the reproduction. Any drift means the op
graph and the executed math have diverged.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..models import TransformerConfig, prefill_workload
from . import ops as _ops

__all__ = ["MacCounter", "count_macs", "expected_forward_macs"]


@dataclass
class MacCounter:
    """Accumulates executed MACs while instrumentation is active."""

    total: int = 0

    def add(self, n: int) -> None:
        """Record ``n`` multiply-accumulates."""
        self.total += int(n)


@contextmanager
def count_macs() -> Iterator[MacCounter]:
    """Instrument :func:`repro.functional.ops.int_matmul` within a scope.

    Every integer matmul executed inside the ``with`` block contributes
    ``prod(batch dims) * K * N`` MACs to the returned counter.
    """
    counter = MacCounter()
    original = _ops.int_matmul

    def counting_matmul(x: np.ndarray, w_t: np.ndarray) -> np.ndarray:
        rows = int(np.prod(x.shape[:-1])) if x.ndim > 1 else 1
        counter.add(rows * x.shape[-1] * w_t.shape[-1])
        return original(x, w_t)

    _ops.int_matmul = counting_matmul
    # The attention/decoder modules imported the symbol directly; patch
    # their references too for the duration of the scope.
    from . import attention as _attention
    from . import decoder as _decoder

    saved = (_attention.int_matmul, _decoder.int_matmul)
    _attention.int_matmul = counting_matmul
    _decoder.int_matmul = counting_matmul
    try:
        yield counter
    finally:
        _ops.int_matmul = original
        _attention.int_matmul, _decoder.int_matmul = saved


def expected_forward_macs(model: TransformerConfig, n_tokens: int) -> int:
    """Analytic matmul MACs of one prefill pass (op-graph counts).

    Excludes the per-head QK^T/SM x V streaming MACs executed outside
    ``int_matmul`` (scores and SM x V accumulate via explicit integer
    loops in the reference/TPHS paths) — callers add those separately
    via :func:`attention_stream_macs`.
    """
    workload = prefill_workload(model, n_tokens)
    return sum(
        op.macs for op in workload.layer_ops() if op.has_weights
    ) * model.n_layers


def attention_stream_macs(model: TransformerConfig, n_tokens: int, kv_len: int) -> int:
    """Analytic QK^T + SM x V MACs of one pass (streamed, not matmul'd)."""
    per_layer = 2 * model.n_heads * n_tokens * kv_len * model.head_dim
    return per_layer * model.n_layers
