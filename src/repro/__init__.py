"""MEADOW reproduction: memory-efficient dataflow and data packing for
low-power edge LLMs (Moitra et al., MLSys 2025).

The package models the full MEADOW stack in Python:

* :mod:`repro.hardware` — the ZCU102-class tiled accelerator substrate;
* :mod:`repro.models` — OPT / DeiT shapes and prefill/decode workloads;
* :mod:`repro.quant` — W8A8 quantization and calibrated synthetic weights;
* :mod:`repro.packing` — the lossless weight-packing pipeline + WILU;
* :mod:`repro.functional` — bit-exact int8 functional simulator;
* :mod:`repro.sim` — cycle-level performance simulator (GEMM + TPHS);
* :mod:`repro.core` — execution plans, dataflow selector, MeadowEngine;
* :mod:`repro.baselines` — GEMM / CTA / FlightLLM comparison systems;
* :mod:`repro.analysis` — sweeps and table/figure renderers;
* :mod:`repro.serving` — request-level multi-user serving simulation;
* :mod:`repro.fleet` — multi-engine sharded serving, routing policies
  and the Pareto sweep driver.

Quickstart::

    from repro import MeadowEngine, OPT_125M, zcu102_config
    engine = MeadowEngine(OPT_125M, zcu102_config(dram_bandwidth_gbps=12))
    print(engine.prefill(512).latency_ms)   # TTFT
    print(engine.decode(576).latency_ms)    # TBT (64th token after 512)
"""

from .baselines import compare_systems, cta, flightllm, gemm_baseline
from .core import (
    DataflowDecision,
    DataflowMode,
    ExecutionPlan,
    MeadowEngine,
    PackingSummary,
    SparsityConfig,
    choose_dataflow,
    dataflow_grid,
)
from .errors import (
    CapacityError,
    ConfigError,
    PackingError,
    ReproError,
    ScheduleError,
    SchedulerClosedError,
    SimulationError,
    UnknownRequestError,
)
from .fleet import (
    FleetReport,
    FleetSimulator,
    ROUTING_POLICIES,
    SweepDriver,
    make_policy,
)
from .hardware import HardwareConfig, ZCU102, scaled_pe_config, zcu102_config
from .models import (
    DEIT_B,
    DEIT_S,
    MODEL_REGISTRY,
    OPT_125M,
    OPT_350M,
    OPT_1_3B,
    TransformerConfig,
    Workload,
    decode_workload,
    get_model,
    prefill_workload,
    vit_workload,
)
from .packing import (
    PackedWeights,
    PackingConfig,
    PackingLevel,
    PackingPlanner,
    pack_weights,
    packing_ablation,
)
from .serving import (
    ClosedLoopSource,
    FleetMetrics,
    LengthDistribution,
    Request,
    ServingSimulator,
    bursty_stream,
    poisson_stream,
)
from .sim import (
    GenerationLatency,
    StageReport,
    end_to_end,
    simulate,
    tbt,
    ttft,
    workload_roofline,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MeadowEngine",
    "PackingSummary",
    "ExecutionPlan",
    "DataflowMode",
    "DataflowDecision",
    "SparsityConfig",
    "choose_dataflow",
    "dataflow_grid",
    "HardwareConfig",
    "ZCU102",
    "zcu102_config",
    "scaled_pe_config",
    "TransformerConfig",
    "OPT_125M",
    "OPT_350M",
    "OPT_1_3B",
    "DEIT_S",
    "DEIT_B",
    "MODEL_REGISTRY",
    "get_model",
    "Workload",
    "prefill_workload",
    "decode_workload",
    "vit_workload",
    "PackingLevel",
    "PackingConfig",
    "PackedWeights",
    "PackingPlanner",
    "pack_weights",
    "packing_ablation",
    "Request",
    "LengthDistribution",
    "poisson_stream",
    "bursty_stream",
    "ClosedLoopSource",
    "ServingSimulator",
    "FleetMetrics",
    "FleetSimulator",
    "FleetReport",
    "SweepDriver",
    "ROUTING_POLICIES",
    "make_policy",
    "StageReport",
    "GenerationLatency",
    "simulate",
    "ttft",
    "tbt",
    "end_to_end",
    "workload_roofline",
    "gemm_baseline",
    "cta",
    "flightllm",
    "compare_systems",
    "ReproError",
    "ConfigError",
    "CapacityError",
    "PackingError",
    "ScheduleError",
    "SimulationError",
    "UnknownRequestError",
    "SchedulerClosedError",
]
