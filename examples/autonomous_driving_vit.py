"""Scenario: ViT perception on an autonomous-driving edge module.

The paper's other motivating application (Sec. 1, Sec. 6.6): vision
transformers on the same low-power fabric. A perception stack must hold a
frame budget — e.g. 10 FPS leaves 100 ms per frame for the backbone.
This example checks which (model, bandwidth) points meet the budget with
and without MEADOW.

Usage::

    python examples/autonomous_driving_vit.py [--budget-ms 100]
"""

import argparse

from repro import DEIT_B, DEIT_S, ExecutionPlan, MeadowEngine, zcu102_config
from repro.analysis import format_table
from repro.packing import PackingPlanner

BANDWIDTHS = [1, 2, 6, 12]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-ms", type=float, default=100.0,
                        help="per-frame latency budget in milliseconds")
    args = parser.parse_args()

    planner = PackingPlanner()
    rows = []
    for model in (DEIT_S, DEIT_B):
        for bw in BANDWIDTHS:
            cfg = zcu102_config(bw)
            meadow = MeadowEngine(model, cfg, planner=planner).vit_inference()
            gemm = MeadowEngine(model, cfg, ExecutionPlan.gemm_baseline()).vit_inference()
            rows.append(
                [
                    model.name,
                    bw,
                    f"{gemm.latency_ms:.1f}",
                    "yes" if gemm.latency_ms <= args.budget_ms else "NO",
                    f"{meadow.latency_ms:.1f}",
                    "yes" if meadow.latency_ms <= args.budget_ms else "NO",
                    f"{gemm.latency_s / meadow.latency_s:.2f}x",
                ]
            )

    print(f"Frame budget: {args.budget_ms:g} ms per inference (224x224, 197 tokens)\n")
    print(
        format_table(
            [
                "model",
                "BW (Gbps)",
                "GEMM (ms)",
                "in budget",
                "MEADOW (ms)",
                "in budget",
                "speedup",
            ],
            rows,
        )
    )
    print(
        "\nMEADOW extends the feasible operating region toward lower "
        "bandwidths — the regime battery/thermal limits push edge modules into."
    )


if __name__ == "__main__":
    main()
