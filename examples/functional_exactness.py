"""Demonstrate the paper's exactness claims on live integer math.

Three claims, three live checks on a functional decoder:

1. weight packing is approximation-less — packed-then-WILU-decoded
   weights produce bit-identical activations;
2. the TPHS dataflow is a re-ordering, not an approximation — identical
   outputs to the GEMM reference at every lane width;
3. both compose all the way to *generated token IDs*.

Usage::

    python examples/functional_exactness.py
"""

import numpy as np

from repro.functional import (
    SyntheticLmHead,
    TinyTransformer,
    count_macs,
    greedy_generate,
    quantize_static,
)
from repro.models import TransformerConfig

MODEL = TransformerConfig("demo", n_layers=2, d_model=32, n_heads=4, d_ff=64,
                          max_seq_len=64)


def main() -> None:
    rng = np.random.default_rng(0)
    prompt = quantize_static(rng.normal(0, 0.5, size=(8, 32)), 0.05)

    print("1) packing losslessness")
    reference = TinyTransformer(MODEL, seed=3)
    y_ref = reference.forward(prompt.copy())
    packed = TinyTransformer(MODEL, seed=3)
    bits = packed.pack_and_restore_weights()
    packed.reset()
    y_packed = packed.forward(prompt.copy())
    print(f"   packed {bits:,} bits; outputs bit-identical: "
          f"{np.array_equal(y_ref, y_packed)}")

    print("\n2) TPHS scheduling equivalence")
    for lanes in (1, 2, 4):
        tphs = TinyTransformer(MODEL, seed=3, execution="tphs", lane_width=lanes)
        y_tphs = tphs.forward(prompt.copy())
        print(f"   lane_width={lanes}: bit-identical to GEMM order: "
              f"{np.array_equal(y_ref, y_tphs)}")

    print("\n3) composition through greedy generation")
    head = SyntheticLmHead(vocab_size=64, d_model=32, seed=1)
    gemm_tokens = greedy_generate(
        TinyTransformer(MODEL, seed=3, execution="gemm"), head, [1, 2, 3], 8
    )
    tphs_model = TinyTransformer(MODEL, seed=3, execution="tphs")
    tphs_model.pack_and_restore_weights()
    tphs_tokens = greedy_generate(tphs_model, head, [1, 2, 3], 8)
    print(f"   GEMM tokens: {gemm_tokens}")
    print(f"   TPHS+packed: {tphs_tokens}")
    print(f"   identical: {gemm_tokens == tphs_tokens}")

    print("\nbonus: executed-MAC audit (functional vs op-graph accounting)")
    with count_macs() as counter:
        TinyTransformer(MODEL, seed=3).forward(prompt.copy())
    print(f"   int_matmul MACs executed: {counter.total:,}")


if __name__ == "__main__":
    main()
