"""Scenario: serving several chat sessions from one edge box.

Decode is weight-fetch bound (Fig. 9), so batching sequences amortizes
the dominant cost. This example sweeps the batch size and shows the
per-token latency / aggregate throughput tradeoff for MEADOW vs the
GEMM baseline — and how the advantage composes with GQA.

Usage::

    python examples/batched_serving.py
"""

from repro import ExecutionPlan, OPT_125M, zcu102_config
from repro.analysis import format_table
from repro.models import decode_workload, with_gqa
from repro.packing import PackingPlanner
from repro.sim import WorkloadSimulator

BATCHES = [1, 2, 4, 8, 16]
CTX = 576


def main() -> None:
    cfg = zcu102_config(12.0)
    planner = PackingPlanner()
    meadow = WorkloadSimulator(OPT_125M, cfg, ExecutionPlan.meadow(), planner)
    gemm = WorkloadSimulator(OPT_125M, cfg, ExecutionPlan.gemm_baseline())

    rows = []
    for b in BATCHES:
        wl = decode_workload(OPT_125M, CTX, batch=b)
        rm, rg = meadow.simulate(wl), gemm.simulate(wl)
        rows.append(
            [
                b,
                f"{rg.latency_ms / b:.2f}",
                f"{rm.latency_ms / b:.2f}",
                f"{b / rm.latency_s:.0f}",
                f"{rg.latency_s / rm.latency_s:.2f}x",
            ]
        )
    print(f"Batched decode, {OPT_125M.name} @12 Gbps, ctx {CTX}:\n")
    print(
        format_table(
            ["batch", "GEMM ms/tok", "MEADOW ms/tok", "MEADOW tok/s", "gain"], rows
        )
    )

    gqa_model = with_gqa(OPT_125M, 2)
    gqa = WorkloadSimulator(gqa_model, cfg, ExecutionPlan.meadow())
    rows2 = []
    for b in BATCHES:
        wl = decode_workload(gqa_model, CTX, batch=b)
        r = gqa.simulate(wl)
        rows2.append([b, f"{r.latency_ms / b:.2f}", f"{b / r.latency_s:.0f}"])
    print(
        "\nWith GQA (2 KV heads) the per-sequence KV traffic shrinks 6x,\n"
        "so batching keeps paying off further:\n"
    )
    print(format_table(["batch", "MEADOW+GQA ms/tok", "tok/s"], rows2))


if __name__ == "__main__":
    main()
