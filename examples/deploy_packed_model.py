"""Deployment flow: pack a model's weights into a portable archive.

Walks the flow a deployment pipeline runs once per checkpoint:

1. autotune the packing configuration for the model,
2. pack every weight matrix of a (small) model,
3. serialize everything into one checksummed archive,
4. reload the archive and verify bit-exact weights through WILU.

Usage::

    python examples/deploy_packed_model.py
"""

import numpy as np

from repro.core import tune_packing
from repro.models import TransformerConfig, OpKind
from repro.packing import dump_model, load_model, pack_weights
from repro.quant import generate_layer_weights


def main() -> None:
    # A compact OPT-style model keeps the demo fast; the flow is
    # identical for the full OPT-125M.
    model = TransformerConfig("opt-mini", 4, 256, 8, 1024, max_seq_len=512)

    print("1) autotuning packing configuration...")
    tuned = tune_packing(model, chunk_sizes=(1, 2, 4), packet_sizes=(4, 8, 16))
    cfg = tuned.best
    print(
        f"   best: C={cfg.chunk_size} P={cfg.packet_size} "
        f"dp_modes={cfg.optimize_modes} -> {tuned.best_compression:.2f}x "
        f"({tuned.n_trials} trials)\n"
    )

    print("2) packing every weight matrix...")
    packed = {}
    originals = {}
    raw_bits = packed_bits = 0
    for layer in range(model.n_layers):
        for kind, w in generate_layer_weights(model, layer).items():
            name = f"layer{layer}.{kind.value}"
            originals[name] = w
            pw = pack_weights(w, cfg)
            packed[name] = pw
            raw_bits += pw.raw_bits
            packed_bits += pw.total_bits
    print(
        f"   {len(packed)} matrices: {raw_bits / 8e6:.2f} MB -> "
        f"{packed_bits / 8e6:.2f} MB ({raw_bits / packed_bits:.2f}x)\n"
    )

    print("3) serializing the archive...")
    archive = dump_model(packed)
    print(f"   archive: {len(archive) / 1e6:.2f} MB on the wire\n")

    print("4) reloading and verifying through the WILU decoder...")
    restored = load_model(archive)
    for name, original in originals.items():
        assert np.array_equal(restored[name].decode(), original), name
    print(f"   all {len(restored)} matrices bit-exact — deployment image is lossless")


if __name__ == "__main__":
    main()
