"""Quickstart: simulate MEADOW on the paper's headline configuration.

Runs OPT-125M on the ZCU102 model at 12 Gbps, reports TTFT / TBT /
end-to-end latency against the GEMM baseline, and shows the weight
packing summary.

Usage::

    python examples/quickstart.py
"""

from repro import ExecutionPlan, MeadowEngine, OPT_125M, zcu102_config


def main() -> None:
    config = zcu102_config(dram_bandwidth_gbps=12.0)
    meadow = MeadowEngine(OPT_125M, config)
    gemm = MeadowEngine(OPT_125M, config, ExecutionPlan.gemm_baseline())

    print(f"Model: {OPT_125M.name}  |  ZCU102 @ {config.dram_bandwidth_gbps:g} Gbps DRAM")
    print(f"PEs: {config.n_parallel_pe} parallel + {config.n_broadcast_pe} broadcasting\n")

    prompt = 512
    ttft_m = meadow.prefill(prompt)
    ttft_g = gemm.prefill(prompt)
    print(f"TTFT ({prompt} tokens):  MEADOW {ttft_m.latency_ms:7.1f} ms   "
          f"GEMM {ttft_g.latency_ms:7.1f} ms   "
          f"-> {ttft_g.latency_s / ttft_m.latency_s:.2f}x lower")

    ctx = prompt + 64
    tbt_m = meadow.decode(ctx)
    tbt_g = gemm.decode(ctx)
    print(f"TBT  (64th token):   MEADOW {tbt_m.latency_ms:7.1f} ms   "
          f"GEMM {tbt_g.latency_ms:7.1f} ms   "
          f"-> {tbt_g.latency_s / tbt_m.latency_s:.2f}x lower")

    gen_m = meadow.generate(prompt, 64)
    gen_g = gemm.generate(prompt, 64)
    print(f"End-to-end (512+64): MEADOW {gen_m.total_s * 1e3:7.1f} ms   "
          f"GEMM {gen_g.total_s * 1e3:7.1f} ms   "
          f"-> {gen_g.total_s / gen_m.total_s:.2f}x lower")
    print(f"Decode throughput:   {gen_m.tokens_per_second:.1f} tok/s (MEADOW)  "
          f"{gen_g.tokens_per_second:.1f} tok/s (GEMM)\n")

    packing = meadow.packing_summary()
    print(f"Weight packing: {packing.raw_mbytes:.1f} MB -> {packing.packed_mbytes:.1f} MB "
          f"({packing.compression:.2f}x, lossless)")

    decision = meadow.recommend_dataflow(prompt)
    print(f"Dataflow choice at this operating point: {decision.best.upper()} "
          f"({decision.advantage:.2f}x faster than the alternative)")


if __name__ == "__main__":
    main()
