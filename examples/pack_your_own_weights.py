"""Pack an int8 weight matrix through the full MEADOW pipeline.

Demonstrates the library's packing API on user-supplied data: chunk
decomposition, the three optimization levels of Fig. 10, the bit-exact
WILU decode, and the DP-optimal mode-table extension.

Usage::

    python examples/pack_your_own_weights.py
"""

import numpy as np

from repro.analysis import format_table
from repro.packing import (
    PackingConfig,
    PackingLevel,
    encode_matrix,
    pack_weights,
    packed_size_bits,
)
from repro.quant import quantize


def main() -> None:
    # Any int8 matrix works; here we quantize a synthetic "trained" float
    # matrix the way a deployment pipeline would (absmax W8).
    rng = np.random.default_rng(7)
    w_float = rng.standard_t(df=4, size=(1024, 512)) * 0.02  # heavy-tailed
    w = quantize(w_float, bits=8).data

    encoded = encode_matrix(w, chunk_size=2)
    print(f"matrix: {w.shape[0]}x{w.shape[1]} int8 = {w.size * 8:,} bits raw")
    print(
        f"chunks: {encoded.n_chunks:,} total, {encoded.unique.n_unique:,} unique "
        f"({encoded.id_bits}-bit IDs, reduction ratio {encoded.reduction_ratio:.0f})\n"
    )

    rows = []
    for level in PackingLevel:
        packed = pack_weights(w, level=level)
        restored = packed.decode()
        assert np.array_equal(restored, w), "packing must be lossless"
        rows.append(
            [
                level.value,
                f"{packed.payload_bits:,}",
                f"{packed.unique_matrix_bits:,}",
                f"{packed.total_bits:,}",
                f"{packed.compression_ratio:.2f}x",
            ]
        )
    optimal_bits = packed_size_bits(
        w, PackingConfig(level=PackingLevel.REINDEX, optimize_modes=True)
    )
    rows.append(
        ["reindex + DP modes", "-", "-", f"{optimal_bits:,}", f"{w.size * 8 / optimal_bits:.2f}x"]
    )

    print(
        format_table(
            ["level", "payload bits", "unique-matrix bits", "total bits", "gain"],
            rows,
        )
    )
    print("\nevery level round-trips bit-exactly through the WILU decoder")


if __name__ == "__main__":
    main()
