"""Scenario: one edge box, many users, three traffic shapes.

Walks the request-level serving simulator through the three arrival
processes — steady Poisson traffic, synchronized bursts, and a
closed-loop user population — on the same deployed MEADOW engine, then
shows what KV-memory pressure does to tail latency when DRAM shrinks.

Usage::

    python examples/multi_user_serving.py
"""

from repro import ExecutionPlan, MeadowEngine, OPT_125M, zcu102_config
from repro.analysis import format_table
from repro.packing import PackingPlanner
from repro.serving import (
    ClosedLoopSource,
    LengthDistribution,
    ServingSimulator,
    bursty_stream,
    poisson_stream,
)

PROMPTS = LengthDistribution("uniform", 64, 256)
OUTPUTS = LengthDistribution("geometric", 24, 96)
N = 48


def scenarios():
    yield "poisson 8 req/s", poisson_stream(N, 8.0, PROMPTS, OUTPUTS, seed=0)
    yield "bursts of 16", bursty_stream(N, 16, 4.0, PROMPTS, OUTPUTS, seed=0)
    yield "8 users, 1 s think", ClosedLoopSource(8, N, 1.0, PROMPTS, OUTPUTS, seed=0)


def main() -> None:
    engine = MeadowEngine(
        OPT_125M, zcu102_config(12.0), ExecutionPlan.meadow(), PackingPlanner()
    )
    sim = ServingSimulator(engine, max_batch=16, ctx_bucket=16)

    print(f"Serving {OPT_125M.name} on the ZCU102 @12 Gbps, {N} requests each:\n")
    rows = []
    for label, source in scenarios():
        m = sim.run(source).metrics
        rows.append(
            [
                label,
                f"{m.throughput_tok_s:.0f}",
                f"{m.ttft.p50_s * 1e3:.0f}",
                f"{m.ttft.p99_s * 1e3:.0f}",
                f"{m.tbt.p99_s * 1e3:.1f}",
                m.max_queue_depth,
                f"{m.peak_kv_fraction:.1%}",
            ]
        )
    print(
        format_table(
            [
                "scenario",
                "tok/s",
                "p50 TTFT (ms)",
                "p99 TTFT (ms)",
                "p99 TBT (ms)",
                "max queue",
                "peak KV",
            ],
            rows,
        )
    )

    print(
        "\nSame bursty traffic under shrinking KV budgets — admission control\n"
        "trades queueing delay (p99 TTFT) for bounded memory:\n"
    )
    rows = []
    for budget_mb in [256, 64, 16]:
        tight = ServingSimulator(
            engine,
            kv_budget_bytes=budget_mb * 1024 * 1024,
            max_batch=16,
            ctx_bucket=16,
        )
        m = tight.run(bursty_stream(N, 16, 4.0, PROMPTS, OUTPUTS, seed=0)).metrics
        rows.append(
            [
                budget_mb,
                f"{m.throughput_tok_s:.0f}",
                f"{m.ttft.p99_s * 1e3:.0f}",
                f"{m.peak_kv_fraction:.1%}",
            ]
        )
    print(format_table(["KV budget (MB)", "tok/s", "p99 TTFT (ms)", "peak KV"], rows))


if __name__ == "__main__":
    main()
