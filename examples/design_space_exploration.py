"""Design-space exploration for a custom edge FPGA (Sec. 6.5).

Given a candidate fabric (PE count, DRAM bandwidth), which dataflow
should run the attention ops, and where does the workload sit on the
roofline? This example reproduces the Fig. 12 methodology on a
user-chosen grid.

Usage::

    python examples/design_space_exploration.py --model opt-125m --tokens 512
"""

import argparse

from repro import ExecutionPlan, dataflow_grid, get_model
from repro.analysis import format_table
from repro.hardware import scaled_pe_config
from repro.models import prefill_workload
from repro.packing import PackingPlanner
from repro.sim import WorkloadSimulator, workload_roofline

BANDWIDTHS = [1.0, 6.0, 25.0, 51.0]
PE_COUNTS = [14, 36, 48, 96]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="opt-125m")
    parser.add_argument("--tokens", type=int, default=512)
    args = parser.parse_args()

    model = get_model(args.model)
    planner = PackingPlanner()

    grid = dataflow_grid(model, BANDWIDTHS, PE_COUNTS, args.tokens, planner)
    rows = []
    for bw in BANDWIDTHS:
        row = [f"{bw:g}"]
        for pes in PE_COUNTS:
            d = grid[(bw, pes)]
            ms = min(d.gemm_cycles, d.tphs_cycles) / 1e5
            row.append(f"{d.best.upper():>4} {ms:6.2f}ms")
        rows.append(row)
    print(f"Optimal attention dataflow, {model.name}, prefill {args.tokens} tokens:\n")
    print(format_table(["BW \\ PEs"] + [str(p) for p in PE_COUNTS], rows))

    print("\nRoofline placement of full MEADOW prefill at each corner:\n")
    corner_rows = []
    for bw in (BANDWIDTHS[0], BANDWIDTHS[-1]):
        for pes in (PE_COUNTS[0], PE_COUNTS[-1]):
            cfg = scaled_pe_config(pes, bw)
            sim = WorkloadSimulator(model, cfg, ExecutionPlan.meadow(), planner)
            pt = workload_roofline(sim.simulate(prefill_workload(model, args.tokens)))
            corner_rows.append(
                [
                    f"BW {bw:g}, PE {pes}",
                    f"{pt.operational_intensity:.1f}",
                    f"{pt.attainable_gmacs:.1f}",
                    f"{pt.achieved_gmacs:.1f}",
                    pt.bound,
                ]
            )
    print(
        format_table(
            ["corner", "OI (MAC/B)", "roof (GMAC/s)", "achieved", "bound"],
            corner_rows,
        )
    )


if __name__ == "__main__":
    main()
