"""Scenario: a mixed fleet of edge boxes, one burst-heavy user base.

A site has accumulated four MEADOW boxes of mixed DRAM bandwidth (two
at 12 Gbps, two at 1 Gbps) and must serve synchronized bursts of
requests across all of them. This example answers the two questions a
capacity planner asks:

1. *Which router?* The same traffic is replayed under every routing
   policy — the blind ones (round-robin, join-shortest-queue) spread
   bursts evenly and let the slow boxes set the tail, while the
   surface-informed predicted-latency router knows what each box's
   prefill actually costs and keeps p99 TTFT an order of magnitude
   lower.
2. *Which configuration?* A Pareto sweep over fleet size x policy x
   batching knobs, printed with front markers: the non-dominated
   points are the only (throughput, p99 TTFT, p99 TBT) trade-offs
   worth deploying.

Usage::

    python examples/fleet_pareto_sweep.py
"""

from repro import ExecutionPlan, MeadowEngine, OPT_125M, zcu102_config
from repro.analysis import format_table
from repro.fleet import POLICY_NAMES, SweepDriver
from repro.packing import PackingPlanner
from repro.serving import LengthDistribution, bursty_stream

PROMPTS = LengthDistribution("uniform", 64, 256)
OUTPUTS = LengthDistribution("geometric", 24, 96)
BANDWIDTHS = [12.0, 1.0, 12.0, 1.0]
N = 48


def stream():
    return bursty_stream(N, 8, 0.25, PROMPTS, OUTPUTS, seed=0)


def main() -> None:
    base = MeadowEngine(
        OPT_125M, zcu102_config(BANDWIDTHS[0]), ExecutionPlan.meadow(),
        PackingPlanner(),
    )
    driver = SweepDriver(base, bandwidths_gbps=BANDWIDTHS)

    print(
        f"Fleet of {len(BANDWIDTHS)} x {OPT_125M.name} "
        f"(bandwidths {' '.join(f'{b:g}' for b in BANDWIDTHS)} Gbps), "
        f"{N} bursty requests:\n"
    )

    rows = []
    for policy in POLICY_NAMES:
        report = driver.run_point(
            stream(), n_engines=len(BANDWIDTHS), policy=policy,
            max_batch=16, ctx_bucket=16,
        )
        m = report.metrics
        rows.append(
            [
                policy,
                f"{m.throughput_tok_s:.0f}",
                f"{m.ttft.p99_s * 1e3:.0f}",
                f"{m.tbt.p99_s * 1e3:.0f}",
                " ".join(str(c) for c in report.result.requests_per_shard),
            ]
        )
    print(
        format_table(
            ["policy", "tok/s", "p99 TTFT (ms)", "p99 TBT (ms)", "per-shard load"],
            rows,
        )
    )

    print("\nPareto sweep (engines x policy x max_batch):\n")
    sweep = driver.sweep(
        stream,
        n_engines_grid=[1, 2, 4],
        policies=["round-robin", "predicted-latency"],
        max_batch_grid=[8, 16],
        ctx_bucket_grid=[16],
    )
    print(sweep.format_table())
    front = sweep.pareto_front()
    best = front[0]
    print(
        f"\n{len(front)} non-dominated point(s); highest-throughput front "
        f"member: {best.n_engines} engine(s), {best.policy}, "
        f"max_batch={best.max_batch} -> {best.throughput_tok_s:.0f} tok/s "
        f"at p99 TTFT {best.ttft_p99_s * 1e3:.0f} ms"
    )


if __name__ == "__main__":
    main()
