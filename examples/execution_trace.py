"""Inspect where the cycles go: execution traces and Gantt charts.

Builds the op-level timeline of one MEADOW prefill pass, prints an ASCII
Gantt of the first decoder layer, and exports the full trace as CSV —
the workflow for validating a schedule against expectations.

Usage::

    python examples/execution_trace.py [--bandwidth 12] [--out trace.csv]
"""

import argparse
from pathlib import Path

from repro import MeadowEngine, OPT_125M, zcu102_config
from repro.sim import build_trace, render_gantt, trace_to_csv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bandwidth", type=float, default=12.0)
    parser.add_argument("--tokens", type=int, default=512)
    parser.add_argument("--out", type=Path, default=None, help="write full CSV trace here")
    args = parser.parse_args()

    engine = MeadowEngine(OPT_125M, zcu102_config(args.bandwidth))
    report = engine.prefill(args.tokens)
    events = build_trace(report)

    layer0 = [ev for ev in events if ev.layer == 0]
    print(
        f"MEADOW prefill, {OPT_125M.name}, {args.tokens} tokens @ "
        f"{args.bandwidth:g} Gbps — layer 0 timeline "
        f"({layer0[-1].end:.0f} cycles):\n"
    )
    print(render_gantt(layer0, width=70))

    busiest = max(events, key=lambda ev: ev.duration)
    print(
        f"\nbusiest op: layer {busiest.layer} {busiest.op} "
        f"({busiest.dataflow}) — {busiest.duration:.0f} cycles "
        f"(fetch {busiest.weight_fetch + busiest.input_fetch:.0f}, "
        f"compute {busiest.compute:.0f}, store {busiest.store:.0f})"
    )

    if args.out is not None:
        args.out.write_text(trace_to_csv(events), encoding="utf-8")
        print(f"\nfull trace ({len(events)} events) written to {args.out}")


if __name__ == "__main__":
    main()
