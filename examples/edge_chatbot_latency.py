"""Scenario: a mobile chatbot on a bandwidth-starved edge device.

The paper's motivation — LLM assistants on sub-10 W platforms without
HBM — boils down to: how fast can a chat turn complete as the memory
system degrades? This example sweeps DRAM bandwidth, compares all four
systems (GEMM baseline, CTA, FlightLLM, MEADOW), and reports the chat
turn latency (256-token prompt, 64-token reply).

Usage::

    python examples/edge_chatbot_latency.py
"""

from repro import (
    ExecutionPlan,
    OPT_125M,
    compare_systems,
    zcu102_config,
)
from repro.analysis import format_table
from repro.packing import PackingPlanner

PROMPT_TOKENS = 256
REPLY_TOKENS = 64
BANDWIDTHS = [1, 2, 6, 12]


def main() -> None:
    planner = PackingPlanner()
    plans = [
        ExecutionPlan.gemm_baseline(),
        ExecutionPlan.cta(),
        ExecutionPlan.flightllm(),
        ExecutionPlan.meadow(),
    ]

    print(
        f"Chat turn: {PROMPT_TOKENS}-token prompt, {REPLY_TOKENS}-token reply "
        f"({OPT_125M.name}, ZCU102-class fabric)\n"
    )
    rows = []
    for bw in BANDWIDTHS:
        comparison = compare_systems(
            OPT_125M,
            zcu102_config(bw),
            plans,
            prefill_tokens=PROMPT_TOKENS,
            decode_token_index=REPLY_TOKENS,
            generated_tokens=REPLY_TOKENS,
            planner=planner,
        )
        e2e = comparison.end_to_end_s
        rows.append(
            [
                bw,
                f"{e2e['gemm'] * 1e3:.0f}",
                f"{e2e['cta'] * 1e3:.0f}",
                f"{e2e['flightllm'] * 1e3:.0f}",
                f"{e2e['meadow'] * 1e3:.0f}",
                f"{e2e['gemm'] / e2e['meadow']:.2f}x",
            ]
        )
    print(
        format_table(
            ["BW (Gbps)", "GEMM (ms)", "CTA (ms)", "FlightLLM (ms)", "MEADOW (ms)", "gain"],
            rows,
        )
    )

    # What a user feels: time until the reply starts, then tokens/second.
    print("\nPerceived responsiveness (MEADOW):")
    from repro import MeadowEngine

    for bw in BANDWIDTHS:
        engine = MeadowEngine(OPT_125M, zcu102_config(bw), planner=planner)
        gen = engine.generate(PROMPT_TOKENS, REPLY_TOKENS)
        print(
            f"  {bw:>2} Gbps: first token after {gen.prefill_s * 1e3:6.0f} ms, "
            f"then {gen.tokens_per_second:5.1f} tok/s"
        )


if __name__ == "__main__":
    main()
